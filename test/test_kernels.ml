(* Tests for the fused/in-place kernel layer and the persistent domain
   pool: every fused kernel matches its naive composition, pool execution
   on 1/2/4 domains is bit-identical to sequential, index debug checks
   fire, and Comm tallies per protocol are invariant under the domain
   count (metering stays single-threaded). *)

open Orq_util
open Orq_proto
module Comm = Orq_net.Comm

let vec = Alcotest.(array int)

let with_domains d mc f =
  Parallel.set_num_domains d;
  Parallel.set_min_chunk mc;
  Fun.protect
    ~finally:(fun () ->
      Parallel.set_num_domains 1;
      Parallel.set_min_chunk 1024)
    f

(* ---------------- fused kernels ≡ naive compositions ---------------- *)

let arr3 = QCheck.(triple (array_of_size (Gen.return 24) int) (array_of_size (Gen.return 24) int) (array_of_size (Gen.return 24) int))
let naive_map2 f a b = Array.init (Array.length a) (fun i -> f a.(i) b.(i))

let qcheck_mul_add_into =
  QCheck.Test.make ~name:"mul_add_into = add dst (mul a b)" ~count:50 arr3
    (fun (dst, a, b) ->
      let expect = Vec.add dst (Vec.mul a b) in
      let got = Vec.copy dst in
      Vec.mul_add_into got a b;
      got = expect)

let qcheck_xor_band_into =
  QCheck.Test.make ~name:"xor_band_into = xor dst (band a b)" ~count:50 arr3
    (fun (dst, a, b) ->
      let expect = Vec.xor dst (Vec.band a b) in
      let got = Vec.copy dst in
      Vec.xor_band_into got a b;
      got = expect)

let qcheck_sub_acc_into =
  QCheck.Test.make ~name:"sub_acc_into = add dst (sub a b)" ~count:50 arr3
    (fun (dst, a, b) ->
      let expect = Vec.add dst (Vec.sub a b) in
      let got = Vec.copy dst in
      Vec.sub_acc_into got a b;
      got = expect)

let qcheck_xor_acc_into =
  QCheck.Test.make ~name:"xor_acc_into = xor dst (xor a b)" ~count:50 arr3
    (fun (dst, a, b) ->
      let expect = Vec.xor dst (Vec.xor a b) in
      let got = Vec.copy dst in
      Vec.xor_acc_into got a b;
      got = expect)

let qcheck_xor3 =
  QCheck.Test.make ~name:"xor3 = xor (xor a b) c" ~count:50 arr3
    (fun (a, b, c) -> Vec.xor3 a b c = Vec.xor (Vec.xor a b) c)

let qcheck_add_sub =
  QCheck.Test.make ~name:"add_sub = add a (sub b c)" ~count:50 arr3
    (fun (a, b, c) -> Vec.add_sub a b c = Vec.add a (Vec.sub b c))

let qcheck_sub_into =
  QCheck.Test.make ~name:"sub_into = sub dst a" ~count:50
    QCheck.(pair (array_of_size (Gen.return 24) int) (array_of_size (Gen.return 24) int))
    (fun (dst, a) ->
      let expect = Vec.sub dst a in
      let got = Vec.copy dst in
      Vec.sub_into got a;
      got = expect)

let qcheck_bit_extract =
  QCheck.Test.make ~name:"bit_extract = and_scalar (shift_right a k) 1"
    ~count:50
    QCheck.(pair (array_of_size (Gen.return 24) int) (int_bound 62))
    (fun (a, k) ->
      Vec.bit_extract a k = Vec.and_scalar (Vec.shift_right a k) 1)

let arr5 =
  QCheck.(
    pair arr3
      (pair (array_of_size (Gen.return 24) int) (array_of_size (Gen.return 24) int)))

let naive_beaver_arith tc d tb e ta with_de =
  let open_terms = Vec.add (naive_map2 ( * ) d tb) (naive_map2 ( * ) e ta) in
  let base = Vec.add tc open_terms in
  if with_de then Vec.add base (naive_map2 ( * ) d e) else base

let naive_beaver_bool tc d tb e ta with_de =
  let open_terms =
    Vec.xor (naive_map2 ( land ) d tb) (naive_map2 ( land ) e ta)
  in
  let base = Vec.xor tc open_terms in
  if with_de then Vec.xor base (naive_map2 ( land ) d e) else base

let qcheck_beaver_arith =
  QCheck.Test.make ~name:"beaver_arith fused = unfused" ~count:50 arr5
    (fun ((tc, d, tb), (e, ta)) ->
      Vec.beaver_arith ~tc ~d ~tb ~e ~ta ~with_de:true
      = naive_beaver_arith tc d tb e ta true
      && Vec.beaver_arith ~tc ~d ~tb ~e ~ta ~with_de:false
         = naive_beaver_arith tc d tb e ta false)

let qcheck_beaver_bool =
  QCheck.Test.make ~name:"beaver_bool fused = unfused" ~count:50 arr5
    (fun ((tc, d, tb), (e, ta)) ->
      Vec.beaver_bool ~tc ~d ~tb ~e ~ta ~with_de:true
      = naive_beaver_bool tc d tb e ta true
      && Vec.beaver_bool ~tc ~d ~tb ~e ~ta ~with_de:false
         = naive_beaver_bool tc d tb e ta false)

let qcheck_rep3_arith =
  QCheck.Test.make ~name:"rep3_arith_into fused = unfused" ~count:50 arr5
    (fun ((dst, xi, yi), (xj, yj)) ->
      let expect =
        Vec.add dst
          (Vec.add
             (Vec.add (naive_map2 ( * ) xi yi) (naive_map2 ( * ) xi yj))
             (naive_map2 ( * ) xj yi))
      in
      let got = Vec.copy dst in
      Vec.rep3_arith_into got ~xi ~yi ~xj ~yj;
      got = expect)

let qcheck_rep3_bool =
  QCheck.Test.make ~name:"rep3_bool_into fused = unfused" ~count:50 arr5
    (fun ((dst, xi, yi), (xj, yj)) ->
      let expect =
        Vec.xor dst
          (Vec.xor
             (Vec.xor (naive_map2 ( land ) xi yi) (naive_map2 ( land ) xi yj))
             (naive_map2 ( land ) xj yi))
      in
      let got = Vec.copy dst in
      Vec.rep3_bool_into got ~xi ~yi ~xj ~yj;
      got = expect)

(* bor at the protocol level still equals x ⊕ y ⊕ (x ∧ y) built from the
   unfused primitives, for every protocol *)
let test_bor_matches_unfused () =
  List.iter
    (fun kind ->
      let ctx = Ctx.create ~seed:77 kind in
      let n = 64 in
      let xs = Prg.words (Prg.create 1) n and ys = Prg.words (Prg.create 2) n in
      let x = Mpc.share_b ctx xs and y = Mpc.share_b ctx ys in
      let got = Share.reconstruct (Mpc.bor ctx x y) in
      let expect = Vec.bor xs ys in
      Alcotest.(check vec)
        ("bor " ^ Ctx.kind_label kind)
        expect got)
    Ctx.all_kinds

(* mul/band against plaintext for every protocol (exercises the fused
   Beaver, rep3 and rep4 paths end to end) *)
let test_secure_mul_band () =
  List.iter
    (fun kind ->
      let ctx = Ctx.create ~seed:31 kind in
      let n = 200 in
      let xs = Prg.words (Prg.create 3) n and ys = Prg.words (Prg.create 4) n in
      let xa = Mpc.share_a ctx xs and ya = Mpc.share_a ctx ys in
      Alcotest.(check vec)
        ("mul " ^ Ctx.kind_label kind)
        (Vec.mul xs ys)
        (Share.reconstruct (Mpc.mul ctx xa ya));
      let xb = Mpc.share_b ctx xs and yb = Mpc.share_b ctx ys in
      Alcotest.(check vec)
        ("band " ^ Ctx.kind_label kind)
        (Vec.band xs ys)
        (Share.reconstruct (Mpc.band ctx xb yb)))
    Ctx.all_kinds

(* ---------------- pool ≡ sequential ---------------- *)

let test_pool_matches_sequential () =
  let n = 10_000 in
  let prg = Prg.create 5 in
  let a = Prg.words prg n and b = Prg.words prg n in
  let perm = Orq_shuffle.Localperm.random prg n in
  let seq_add = Vec.add a b
  and seq_mul = Vec.mul a b
  and seq_band = Vec.band a b
  and seq_gather = Vec.gather a perm
  and seq_scatter = Vec.scatter a perm
  and seq_prefix = Vec.prefix_sum a
  and seq_rev = Vec.rev a
  and seq_sum = Vec.sum a
  and seq_xor_all = Vec.xor_all a in
  List.iter
    (fun d ->
      with_domains d 64 (fun () ->
          let lbl op = Printf.sprintf "%s @%dd" op d in
          Alcotest.(check vec) (lbl "add") seq_add (Vec.add a b);
          Alcotest.(check vec) (lbl "mul") seq_mul (Vec.mul a b);
          Alcotest.(check vec) (lbl "band") seq_band (Vec.band a b);
          Alcotest.(check vec) (lbl "gather") seq_gather (Vec.gather a perm);
          Alcotest.(check vec) (lbl "scatter") seq_scatter (Vec.scatter a perm);
          Alcotest.(check vec) (lbl "prefix") seq_prefix (Vec.prefix_sum a);
          Alcotest.(check vec) (lbl "rev") seq_rev (Vec.rev a);
          Alcotest.(check int) (lbl "sum") seq_sum (Vec.sum a);
          Alcotest.(check int) (lbl "xor_all") seq_xor_all (Vec.xor_all a);
          Alcotest.(check vec) (lbl "apply_perm") seq_scatter
            (Parallel.apply_perm a perm)))
    [ 1; 2; 4 ]

let test_pool_reuse_and_exceptions () =
  with_domains 3 16 (fun () ->
      (* repeated dispatches reuse the same parked workers *)
      let a = Array.init 4096 (fun i -> i) in
      for _ = 1 to 20 do
        Alcotest.(check int) "sum stable" (4096 * 4095 / 2) (Vec.sum a)
      done;
      (* an exception raised inside a span propagates to the caller and
         leaves the pool usable *)
      (try
         Parallel.run_spans 4096 (fun pos _ ->
             if pos >= 0 then failwith "span boom");
         Alcotest.fail "expected exception"
       with Failure m -> Alcotest.(check string) "propagated" "span boom" m);
      Alcotest.(check int) "pool alive after exception" (4096 * 4095 / 2)
        (Vec.sum a))

(* ---------------- debug index checks ---------------- *)

let check_invalid name f =
  match f () with
  | exception Invalid_argument msg ->
      Alcotest.(check bool)
        (name ^ " names the op")
        true
        (String.length msg > 0 && String.contains msg ':')
  | _ -> Alcotest.fail (name ^ ": expected Invalid_argument")

let test_debug_checks () =
  Debug.set_checks true;
  Fun.protect
    ~finally:(fun () -> Debug.set_checks false)
    (fun () ->
      check_invalid "scatter out of range" (fun () ->
          Vec.scatter [| 1; 2 |] [| 0; 5 |]);
      check_invalid "scatter duplicate" (fun () ->
          Vec.scatter [| 1; 2; 3 |] [| 0; 0; 2 |]);
      check_invalid "scatter wrong length" (fun () ->
          Vec.scatter [| 1; 2; 3 |] [| 0; 1 |]);
      check_invalid "gather out of range" (fun () ->
          Vec.gather [| 1; 2 |] [| 1; 2 |]);
      check_invalid "apply_perm duplicate" (fun () ->
          Parallel.apply_perm [| 1; 2 |] [| 1; 1 |]);
      (* valid inputs still pass with checks on *)
      Alcotest.(check vec) "valid scatter ok" [| 2; 1 |]
        (Vec.scatter [| 1; 2 |] [| 1; 0 |]);
      Alcotest.(check vec) "gather dup ok" [| 2; 2 |]
        (Vec.gather [| 1; 2 |] [| 1; 1 |]))

(* ---------------- metering invariance ---------------- *)

(* Drive every interactive primitive family (mul, band, bor, open,
   shuffle, radixsort) and return the full tallies plus opened results. *)
let protocol_trace kind =
  let ctx = Ctx.create ~seed:99 kind in
  let n = 300 in
  let xs = Prg.words (Prg.create 11) n and ys = Prg.words (Prg.create 12) n in
  let xa = Mpc.share_a ctx xs and ya = Mpc.share_a ctx ys in
  let xb = Mpc.share_b ctx xs and yb = Mpc.share_b ctx ys in
  let za = Mpc.mul ctx xa ya in
  let zb = Mpc.band ctx xb yb in
  let zo = Mpc.bor ctx xb yb in
  let opened_mul = Mpc.open_ ctx za in
  let shuffled = Orq_shuffle.Permops.shuffle ctx xb in
  let keys = Array.init n (fun i -> (xs.(i) land 0xF) lxor (i land 3)) in
  let kb = Mpc.share_b ctx keys in
  let sorted, _ = Orq_sort.Radixsort.sort ctx ~bits:4 kb [] in
  ( Comm.snapshot ctx.Ctx.comm,
    Comm.snapshot ctx.Ctx.preproc,
    [
      opened_mul;
      Share.reconstruct zb;
      Share.reconstruct zo;
      Share.reconstruct shuffled;
      Share.reconstruct sorted;
    ] )

let check_tally label (a : Comm.tally) (b : Comm.tally) =
  Alcotest.(check int) (label ^ " rounds") a.Comm.t_rounds b.Comm.t_rounds;
  Alcotest.(check int) (label ^ " bits") a.Comm.t_bits b.Comm.t_bits;
  Alcotest.(check int) (label ^ " messages") a.Comm.t_messages b.Comm.t_messages

let test_metering_invariance () =
  List.iter
    (fun kind ->
      let on1, pre1, out1 = protocol_trace kind in
      let on4, pre4, out4 =
        with_domains 4 8 (fun () -> protocol_trace kind)
      in
      let lbl = Ctx.kind_label kind in
      check_tally (lbl ^ " online") on1 on4;
      check_tally (lbl ^ " preproc") pre1 pre4;
      List.iteri
        (fun i (a, b) ->
          Alcotest.(check vec) (Printf.sprintf "%s result %d" lbl i) a b)
        (List.combine out1 out4))
    Ctx.all_kinds

let suite =
  [
    QCheck_alcotest.to_alcotest qcheck_mul_add_into;
    QCheck_alcotest.to_alcotest qcheck_xor_band_into;
    QCheck_alcotest.to_alcotest qcheck_sub_acc_into;
    QCheck_alcotest.to_alcotest qcheck_xor_acc_into;
    QCheck_alcotest.to_alcotest qcheck_xor3;
    QCheck_alcotest.to_alcotest qcheck_add_sub;
    QCheck_alcotest.to_alcotest qcheck_sub_into;
    QCheck_alcotest.to_alcotest qcheck_bit_extract;
    QCheck_alcotest.to_alcotest qcheck_beaver_arith;
    QCheck_alcotest.to_alcotest qcheck_beaver_bool;
    QCheck_alcotest.to_alcotest qcheck_rep3_arith;
    QCheck_alcotest.to_alcotest qcheck_rep3_bool;
    Alcotest.test_case "bor matches unfused composition" `Quick
      test_bor_matches_unfused;
    Alcotest.test_case "secure mul/band vs plaintext (all kinds)" `Quick
      test_secure_mul_band;
    Alcotest.test_case "pool 1/2/4 domains = sequential" `Quick
      test_pool_matches_sequential;
    Alcotest.test_case "pool reuse + exception propagation" `Quick
      test_pool_reuse_and_exceptions;
    Alcotest.test_case "debug index/permutation checks" `Quick
      test_debug_checks;
    Alcotest.test_case "metering invariant under domain count" `Quick
      test_metering_invariance;
  ]

let () = Alcotest.run "orq_kernels" [ ("kernels", suite) ]
