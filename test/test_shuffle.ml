(* Tests for the oblivious shuffle stack: local permutations, sharded
   permutations, and Protocols 4-8 (shuffle, elementwise application,
   composition, conversion, inversion), under all three MPC protocols. *)

open Orq_util
open Orq_proto
open Orq_shuffle

let kinds = Ctx.all_kinds
let vec = Alcotest.(array int)
let for_all_kinds f = List.iter (fun k -> f (Ctx.create ~seed:21 k)) kinds

let sorted_copy a =
  let b = Array.copy a in
  Array.sort compare b;
  b

(* ---------------- local permutations ---------------- *)

let test_localperm_random () =
  let prg = Prg.create 1 in
  let p = Localperm.random prg 100 in
  Alcotest.(check bool) "is permutation" true (Localperm.is_permutation p);
  let q = Localperm.random prg 100 in
  Alcotest.(check bool) "distinct draws" false (p = q)

let test_localperm_algebra () =
  let prg = Prg.create 2 in
  let p = Localperm.random prg 50 and q = Localperm.random prg 50 in
  let x = Prg.words prg 50 in
  (* apply then inverse is identity *)
  Alcotest.(check vec) "apply/inverse" x
    (Localperm.apply_inverse (Localperm.apply x p) p);
  (* invert *)
  Alcotest.(check vec) "invert" x
    (Localperm.apply (Localperm.apply x p) (Localperm.invert p));
  (* compose: apply (compose p q) == apply q then p *)
  Alcotest.(check vec) "compose"
    (Localperm.apply (Localperm.apply x q) p)
    (Localperm.apply x (Localperm.compose p q))

let qcheck_localperm_compose =
  QCheck.Test.make ~name:"compose associativity" ~count:30
    QCheck.(small_nat)
    (fun seed ->
      let prg = Prg.create (seed + 3) in
      let n = 20 in
      let a = Localperm.random prg n
      and b = Localperm.random prg n
      and c = Localperm.random prg n in
      Localperm.compose (Localperm.compose a b) c
      = Localperm.compose a (Localperm.compose b c))

(* ---------------- sharded permutations ---------------- *)

let test_sharded_apply () =
  for_all_kinds (fun ctx ->
      let x = Prg.words ctx.Ctx.prg 64 in
      let p = Shardedperm.gen ctx 64 in
      let y = Shardedperm.apply ctx (Mpc.share_b ctx x) p |> Share.reconstruct in
      Alcotest.(check vec) "is plaintext perm"
        (Localperm.apply x (Shardedperm.plaintext p))
        y;
      Alcotest.(check vec) "multiset preserved" (sorted_copy x) (sorted_copy y))

let test_sharded_inverse () =
  for_all_kinds (fun ctx ->
      let x = Prg.words ctx.Ctx.prg 40 in
      let p = Shardedperm.gen ctx 40 in
      let y = Shardedperm.apply ctx (Mpc.share_a ctx x) p in
      let z = Shardedperm.apply_inverse ctx y p |> Share.reconstruct in
      Alcotest.(check vec) "inverse undoes apply" x z)

let test_sharded_metering () =
  (* Table 1: applySharded totals (bits, rounds): 2PC (2ln, 2);
     3PC (6ln, 3); 4PC (24ln, 4) *)
  let expect = [ (Ctx.Sh_dm, 2, 2); (Ctx.Sh_hm, 6, 3); (Ctx.Mal_hm, 24, 4) ] in
  List.iter
    (fun (k, factor, rounds) ->
      let ctx = Ctx.create k in
      let n = 16 in
      let x = Mpc.share_b ctx (Array.make n 5) in
      let p = Shardedperm.gen ctx n in
      let before = Orq_net.Comm.snapshot ctx.Ctx.comm in
      ignore (Shardedperm.apply ctx x p);
      let tl = Orq_net.Comm.since ctx.Ctx.comm before in
      Alcotest.(check int)
        (Ctx.kind_label k ^ " bits")
        (factor * ctx.Ctx.ell * n)
        tl.Orq_net.Comm.t_bits;
      Alcotest.(check int) (Ctx.kind_label k ^ " rounds") rounds
        tl.Orq_net.Comm.t_rounds)
    expect

let test_sharded_table_rounds () =
  for_all_kinds (fun ctx ->
      let n = 8 in
      let cols = List.init 5 (fun i -> Mpc.share_b ctx (Array.make n i)) in
      let p = Shardedperm.gen ctx n in
      let before = Orq_net.Comm.snapshot ctx.Ctx.comm in
      let single = Shardedperm.apply ctx (List.hd cols) p in
      let tl1 = Orq_net.Comm.since ctx.Ctx.comm before in
      ignore single;
      let before2 = Orq_net.Comm.snapshot ctx.Ctx.comm in
      ignore (Shardedperm.apply_table ctx cols p);
      let tl2 = Orq_net.Comm.since ctx.Ctx.comm before2 in
      Alcotest.(check int) "table apply same rounds as single"
        tl1.Orq_net.Comm.t_rounds tl2.Orq_net.Comm.t_rounds;
      Alcotest.(check int) "table apply 5x bits" (5 * tl1.Orq_net.Comm.t_bits)
        tl2.Orq_net.Comm.t_bits)

let test_sharded_malicious_abort () =
  let ctx = Ctx.create Ctx.Mal_hm in
  let x = Mpc.share_b ctx [| 1; 2; 3; 4 |] in
  let p = Shardedperm.gen ctx 4 in
  let tampered ~party ~op = if party = 1 && op = "shuffle" then Some 1 else None in
  Alcotest.check_raises "tampered reshare aborts"
    (Ctx.Abort "shuffle: reshare verification failed") (fun () ->
      Ctx.with_tamper ctx tampered (fun () -> ignore (Shardedperm.apply ctx x p)))

(* ---------------- Protocols 4-8 ---------------- *)

let test_shuffle () =
  for_all_kinds (fun ctx ->
      let x = Array.init 50 (fun i -> i * 10) in
      let y = Permops.shuffle ctx (Mpc.share_b ctx x) |> Share.reconstruct in
      Alcotest.(check vec) "multiset preserved" (sorted_copy x) (sorted_copy y);
      Alcotest.(check bool) "actually moved" false (Vec.equal x y))

let test_shuffle_table_consistent () =
  for_all_kinds (fun ctx ->
      let x = Array.init 30 (fun i -> i) in
      let y = Array.init 30 (fun i -> 100 + i) in
      match
        Permops.shuffle_table ctx [ Mpc.share_b ctx x; Mpc.share_b ctx y ]
      with
      | [ sx; sy ] ->
          let x' = Share.reconstruct sx and y' = Share.reconstruct sy in
          Array.iteri
            (fun i xi ->
              Alcotest.(check int) "rows move together" (xi + 100) y'.(i))
            x'
      | _ -> Alcotest.fail "arity")

let test_apply_elementwise () =
  for_all_kinds (fun ctx ->
      let n = 25 in
      let x = Prg.words ctx.Ctx.prg n in
      let rho = Localperm.random ctx.Ctx.prg n in
      let y =
        Permops.apply_elementwise ctx (Mpc.share_b ctx x)
          (Mpc.share_a ctx rho)
        |> Share.reconstruct
      in
      Alcotest.(check vec) "rho(x)" (Localperm.apply x rho) y)

let test_apply_elementwise_table () =
  for_all_kinds (fun ctx ->
      let n = 12 in
      let x = Array.init n (fun i -> i) in
      let y = Array.init n (fun i -> i * i) in
      let rho = Localperm.random ctx.Ctx.prg n in
      match
        Permops.apply_elementwise_table ctx
          [ Mpc.share_b ctx x; Mpc.share_b ctx y ]
          (Mpc.share_b ctx rho)
      with
      | [ sx; sy ] ->
          Alcotest.(check vec) "col x" (Localperm.apply x rho)
            (Share.reconstruct sx);
          Alcotest.(check vec) "col y" (Localperm.apply y rho)
            (Share.reconstruct sy)
      | _ -> Alcotest.fail "arity")

let test_compose () =
  for_all_kinds (fun ctx ->
      let n = 20 in
      let sigma = Localperm.random ctx.Ctx.prg n in
      let rho = Localperm.random ctx.Ctx.prg n in
      let got =
        Permops.compose ctx (Mpc.share_b ctx sigma) (Mpc.share_b ctx rho)
        |> Share.reconstruct
      in
      Alcotest.(check vec) "rho o sigma" (Localperm.compose rho sigma) got)

let test_invert () =
  for_all_kinds (fun ctx ->
      let n = 20 in
      let pi = Localperm.random ctx.Ctx.prg n in
      let got = Permops.invert ctx (Mpc.share_b ctx pi) |> Share.reconstruct in
      Alcotest.(check vec) "pi^{-1}" (Localperm.invert pi) got)

let test_convert () =
  for_all_kinds (fun ctx ->
      let n = 20 in
      let pi = Localperm.random ctx.Ctx.prg n in
      let a = Permops.convert ctx (Mpc.share_b ctx pi) Share.Arith in
      Alcotest.(check bool) "enc changed" true (a.Share.enc = Share.Arith);
      Alcotest.(check vec) "value preserved" pi (Share.reconstruct a);
      let b = Permops.convert ctx a Share.Bool in
      Alcotest.(check vec) "roundtrip" pi (Share.reconstruct b))

let qcheck_perm_protocols_compose_invert =
  QCheck.Test.make ~name:"invert(compose) laws under MPC" ~count:10
    QCheck.small_nat
    (fun seed ->
      List.for_all
        (fun k ->
          let ctx = Ctx.create ~seed:(seed + 31) k in
          let n = 16 in
          let sigma = Localperm.random ctx.Ctx.prg n in
          let inv =
            Permops.invert ctx (Mpc.share_b ctx sigma) |> Share.reconstruct
          in
          let composed =
            Permops.compose ctx (Mpc.share_b ctx sigma) (Mpc.share_b ctx inv)
            |> Share.reconstruct
          in
          composed = Localperm.identity n)
        kinds)

let suite =
  [
    Alcotest.test_case "fisher-yates" `Quick test_localperm_random;
    Alcotest.test_case "local perm algebra" `Quick test_localperm_algebra;
    QCheck_alcotest.to_alcotest qcheck_localperm_compose;
    Alcotest.test_case "sharded apply" `Quick test_sharded_apply;
    Alcotest.test_case "sharded inverse" `Quick test_sharded_inverse;
    Alcotest.test_case "sharded metering (Table 1)" `Quick test_sharded_metering;
    Alcotest.test_case "table apply batches rounds" `Quick
      test_sharded_table_rounds;
    Alcotest.test_case "Mal-HM abort on tampered shuffle" `Quick
      test_sharded_malicious_abort;
    Alcotest.test_case "Protocol 4: shuffle" `Quick test_shuffle;
    Alcotest.test_case "shuffle_table row consistency" `Quick
      test_shuffle_table_consistent;
    Alcotest.test_case "Protocol 5: applyElementwisePerm" `Quick
      test_apply_elementwise;
    Alcotest.test_case "Protocol 5 (table variant)" `Quick
      test_apply_elementwise_table;
    Alcotest.test_case "Protocol 6: composePerms" `Quick test_compose;
    Alcotest.test_case "Protocol 8: invertElementwisePerm" `Quick test_invert;
    Alcotest.test_case "Protocol 7: convertElementwisePerm" `Quick test_convert;
    QCheck_alcotest.to_alcotest qcheck_perm_protocols_compose_invert;
  ]

let () = Alcotest.run "orq_shuffle" [ ("shuffle", suite) ]
