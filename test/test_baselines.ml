(* Tests for the comparison baselines: the Secrecy-style quadratic engine,
   the SecretFlow-style leaky PSI join, and the non-vectorized radixsort.
   Each must be *correct* (same results as ORQ / plaintext) while paying
   the costs the paper attributes to it. *)

open Orq_proto
open Orq_core
open Orq_baselines

let rows_t = Alcotest.(list (list int))
let hm () = Ctx.create ~seed:41 Ctx.Sh_hm

let small_tables ctx =
  let l =
    Table.create ctx "L"
      [ ("k", 8, [| 1; 2; 3; 4 |]); ("lv", 8, [| 10; 20; 30; 40 |]) ]
  in
  let r =
    Table.create ctx "R"
      [ ("k", 8, [| 2; 2; 3; 9; 1 |]); ("rv", 8, [| 5; 6; 7; 8; 9 |]) ]
  in
  (l, r)

let expected_join = [ [ 1; 10; 9 ]; [ 2; 20; 5 ]; [ 2; 20; 6 ]; [ 3; 30; 7 ] ]

let test_nested_join () =
  let ctx = hm () in
  let l, r = small_tables ctx in
  let j = Secrecy_engine.nested_join ctx l r ~on:[ "k" ] in
  Alcotest.(check int) "quadratic physical size" 20 (Table.nrows j);
  Alcotest.(check rows_t) "same result as plaintext" expected_join
    (Table.valid_rows_sorted j [ "k"; "lv"; "rv" ])

let test_nested_join_matches_orq () =
  let ctx = hm () in
  let l, r = small_tables ctx in
  let orq = Dataflow.inner_join l r ~on:[ "k" ] ~copy:[ "lv" ] in
  let sec = Secrecy_engine.nested_join ctx l r ~on:[ "k" ] in
  Alcotest.(check rows_t) "baseline agrees with ORQ join"
    (Table.valid_rows_sorted orq [ "k"; "lv"; "rv" ])
    (Table.valid_rows_sorted sec [ "k"; "lv"; "rv" ])

let test_nested_join_quadratic_cost () =
  (* the whole point of ORQ: the baseline's bytes blow up quadratically *)
  let ctx1 = hm () and ctx2 = hm () in
  let mk ctx n =
    Table.create ctx "T" [ ("k", 16, Array.init n (fun i -> i)) ]
  in
  let cost ctx n =
    let t = mk ctx n in
    let before = Orq_net.Comm.snapshot ctx.Ctx.comm in
    ignore (Secrecy_engine.nested_join ctx t (Table.rename_col (mk ctx n) ~from:"k" ~into:"k") ~on:[ "k" ]);
    (Orq_net.Comm.since ctx.Ctx.comm before).Orq_net.Comm.t_bits
  in
  let c16 = cost ctx1 16 and c64 = cost ctx2 64 in
  Alcotest.(check bool) "16x data -> ~16x bytes" true
    (c64 > 12 * c16)

let test_nested_semi_join () =
  let ctx = hm () in
  let l, r = small_tables ctx in
  let s = Secrecy_engine.nested_semi_join ctx l r ~on:[ "k" ] in
  Alcotest.(check rows_t) "semi join"
    [ [ 1 ]; [ 2 ]; [ 3 ] ]
    (Table.valid_rows_sorted s [ "k" ])

let test_bitonic_table_sort () =
  let ctx = hm () in
  let t =
    Table.create ctx "T"
      [ ("k", 8, [| 5; 1; 4; 2; 3 |]); ("v", 8, [| 50; 10; 40; 20; 30 |]) ]
  in
  let t = Dataflow.filter t Expr.(col "k" <>. const 4) in
  let s = Secrecy_engine.bitonic_sort t [ ("k", Tablesort.Asc) ] in
  (* valid rows first, in key order *)
  let cols, valid = Table.peek s in
  let k = List.assoc "k" cols and v = List.assoc "v" cols in
  Alcotest.(check (array int)) "valid prefix" [| 1; 1; 1; 1 |] (Array.sub valid 0 4);
  Alcotest.(check (array int)) "keys sorted" [| 1; 2; 3; 5 |] (Array.sub k 0 4);
  Alcotest.(check (array int)) "values follow" [| 10; 20; 30; 50 |] (Array.sub v 0 4)

let test_secrecy_group_by () =
  let ctx = hm () in
  let t =
    Table.create ctx "T"
      [ ("g", 4, [| 1; 2; 1; 2; 1 |]); ("x", 8, [| 1; 2; 3; 4; 5 |]) ]
  in
  let r =
    Secrecy_engine.group_by t ~keys:[ "g" ]
      ~aggs:[ { Dataflow.src = "x"; dst = "s"; fn = Dataflow.Sum } ]
  in
  Alcotest.(check rows_t) "group sums" [ [ 1; 9 ]; [ 2; 6 ] ]
    (Table.valid_rows_sorted r [ "g"; "s" ])

let test_secrecy_distinct () =
  let ctx = hm () in
  let t = Table.create ctx "T" [ ("x", 8, [| 3; 1; 3; 1; 2 |]) ] in
  let r = Secrecy_engine.distinct t [ "x" ] in
  Alcotest.(check rows_t) "distinct" [ [ 1 ]; [ 2 ]; [ 3 ] ]
    (Table.valid_rows_sorted r [ "x" ])

let test_leaky_join () =
  let ctx = Ctx.create ~seed:43 Ctx.Sh_dm in
  let l, r = small_tables ctx in
  let j = Leaky_join.inner_join ctx l r ~on:[ "k" ] ~copy:[ "lv" ] () in
  Alcotest.(check rows_t) "leaky join correct" expected_join
    (Table.valid_rows_sorted j [ "k"; "lv"; "rv" ]);
  (* the leak: physical output size equals the true match count *)
  Alcotest.(check int) "output size leaks cardinality" 4 (Table.nrows j)

let test_leaky_join_cheaper () =
  let mk () =
    let ctx = Ctx.create ~seed:47 Ctx.Sh_dm in
    let l, r = small_tables ctx in
    (ctx, l, r)
  in
  let ctx1, l1, r1 = mk () in
  let b1 = Orq_net.Comm.snapshot ctx1.Ctx.comm in
  ignore (Leaky_join.inner_join ctx1 l1 r1 ~on:[ "k" ] ());
  let leaky = (Orq_net.Comm.since ctx1.Ctx.comm b1).Orq_net.Comm.t_bits in
  let ctx2, l2, r2 = mk () in
  let b2 = Orq_net.Comm.snapshot ctx2.Ctx.comm in
  ignore (Dataflow.inner_join l2 r2 ~on:[ "k" ]);
  let oblivious = (Orq_net.Comm.since ctx2.Ctx.comm b2).Orq_net.Comm.t_bits in
  Alcotest.(check bool) "leaky join much cheaper (that's the leak's price)"
    true
    (leaky * 5 < oblivious)

let test_radix_naive () =
  let ctx = hm () in
  let x = [| 9; 3; 7; 3; 0; 15; 3; 8 |] in
  let y, _ = Radix_naive.sort ctx ~bits:4 (Mpc.share_b ctx x) [] in
  let expect = Array.copy x in
  Array.sort compare expect;
  Alcotest.(check (array int)) "naive radixsort sorts" expect
    (Share.reconstruct y)

let test_radix_naive_more_rounds () =
  let run f =
    let ctx = hm () in
    let x = Mpc.share_b ctx (Array.init 32 (fun i -> (i * 13) land 63)) in
    let before = Orq_net.Comm.snapshot ctx.Ctx.comm in
    ignore (f ctx x);
    Orq_net.Comm.since ctx.Ctx.comm before
  in
  let naive = run (fun ctx x -> Radix_naive.sort ctx ~bits:6 x []) in
  let vect = run (fun ctx x -> Orq_sort.Radixsort.sort ctx ~bits:6 x []) in
  Alcotest.(check bool) "non-vectorized pays many more rounds" true
    (naive.Orq_net.Comm.t_rounds > 5 * vect.Orq_net.Comm.t_rounds);
  Alcotest.(check bool) "and more bandwidth (framing)" true
    (naive.Orq_net.Comm.t_bits > vect.Orq_net.Comm.t_bits)

let suite =
  [
    Alcotest.test_case "Secrecy nested join" `Quick test_nested_join;
    Alcotest.test_case "nested join agrees with ORQ" `Quick
      test_nested_join_matches_orq;
    Alcotest.test_case "nested join quadratic bytes" `Quick
      test_nested_join_quadratic_cost;
    Alcotest.test_case "Secrecy semi join" `Quick test_nested_semi_join;
    Alcotest.test_case "bitonic table sort" `Quick test_bitonic_table_sort;
    Alcotest.test_case "Secrecy group-by" `Quick test_secrecy_group_by;
    Alcotest.test_case "Secrecy distinct" `Quick test_secrecy_distinct;
    Alcotest.test_case "leaky PSI join correct" `Quick test_leaky_join;
    Alcotest.test_case "leaky join cheaper (leakage trade)" `Quick
      test_leaky_join_cheaper;
    Alcotest.test_case "naive radixsort correct" `Quick test_radix_naive;
    Alcotest.test_case "naive radixsort pays rounds" `Quick
      test_radix_naive_more_rounds;
  ]

let () = Alcotest.run "orq_baselines" [ ("baselines", suite) ]
