(* Deliberately-leaky code: the lint self-test fixture. This file lives in
   a directory with no dune stanza — it is never compiled, only parsed by
   `orq_lint lint --expect-violations test/lint_fixtures` (wired into
   `make lint`), which must flag every construct below. If the lint ever
   stops catching one of these, the self-test fails the build. *)

(* Rule 1: an opening primitive at a site absent from the Declass
   allowlist — an unregistered declassification. *)
let leak_histogram ctx xs =
  let opened = Mpc.open_ ctx xs in
  Vec.fold_left ( + ) 0 opened

(* Rule 2: control flow whose scrutinee flows from an opened value — the
   if-condition, the for-loop bound and the while-loop condition below all
   leak data through timing/trace shape. *)
let leak_count ctx xs =
  let bits = Mpc.open_f ctx xs in
  let total = ref 0 in
  for i = 0 to Bits.length bits - 1 do
    if Bits.get bits i = 1 then incr total
  done;
  let remaining = ref (Bits.length bits) in
  while !remaining > 0 do
    decr remaining
  done;
  !total

(* Rule 3: an interactive MPC primitive inside a Parallel worker lambda —
   workers would race on the shared communication schedule. *)
let leak_parallel ctx x y =
  Parallel.run_tasks 4 (fun _ -> ignore (Mpc.mul ctx x y))
