(* Seeded concurrency-discipline violations for the lint self-test
   (orq_lint concur --expect-violations test/lint_fixtures).

   This file is parsed, never compiled. Each function below trips one
   rule of lib/analysis/concur.ml; the expected findings are asserted
   in test/test_concur.ml and by `make lint`. It must stay clean under
   the *leakage* lint (no open_/Mpc calls), just as leaky_example.ml
   stays clean under the concur lint. *)

(* registry: raw mutexes are forbidden outside lib/util/locked.ml *)
let raw_mutex = Mutex.create ()

(* registry: a lock name absent from lockmap.ml *)
let rogue = Locked.create ~name:"rogue" ~rank:99 ()

(* registry: a registered name created with the wrong rank *)
let misranked = Locked.create ~name:"chunkvec" ~rank:10 ()

(* two correctly registered locks for the rules below *)
let inner = Locked.create ~name:"parallel" ~rank:60 ()
let outer = Locked.create ~name:"jobqueue" ~rank:20 ()

(* order: acquiring a lower-rank lock while a higher rank is held *)
let lock_order_inversion () =
  Locked.with_lock inner (fun () -> Locked.with_lock outer (fun () -> 0))

(* blocking: syscall sleep inside a held-lock region *)
let sleep_under_lock () =
  Locked.with_lock outer (fun () -> Unix.sleepf 0.01)

(* blocking, transitively: the helper blocks, the region calls it *)
let slow_helper fd buf = Unix.read fd buf 0 (Bytes.length buf)

let read_under_lock fd buf =
  Locked.with_lock outer (fun () -> slow_helper fd buf)

(* shared: top-level mutable state captured by a cross-domain closure *)
let hits = ref 0

let racy_spawn () = Domain.spawn (fun () -> hits := !hits + 1)

(* finaliser: a Gc.finalise callback that takes a registered lock *)
let finaliser_locks v =
  Gc.finalise (fun r -> Locked.with_lock inner (fun () -> ignore r)) v
