(* Tests for the foundation layers: ring helpers, the seeded PRG, vector
   operations, domain-based parallelism, communication tallies, and the
   network cost model. *)

open Orq_util
module Comm = Orq_net.Comm
module Netsim = Orq_net.Netsim

let vec = Alcotest.(array int)

(* ---------------- Ring ---------------- *)

let test_ring () =
  Alcotest.(check int) "mask 8" 255 (Ring.mask 8);
  Alcotest.(check int) "mask full" (-1) (Ring.mask Ring.word_bits);
  Alcotest.(check int) "truncate" 0x34 (Ring.truncate 8 0x1234);
  Alcotest.(check int) "bit" 1 (Ring.bit 0b100 2);
  Alcotest.(check int) "popcount" 3 (Ring.popcount 0b10101);
  Alcotest.(check int) "log2_ceil 1" 0 (Ring.log2_ceil 1);
  Alcotest.(check int) "log2_ceil 5" 3 (Ring.log2_ceil 5);
  Alcotest.(check int) "log2_ceil 8" 3 (Ring.log2_ceil 8);
  Alcotest.(check int) "next_pow2" 8 (Ring.next_pow2 5);
  Alcotest.(check bool) "is_pow2" true (Ring.is_pow2 64);
  Alcotest.(check bool) "is_pow2 no" false (Ring.is_pow2 63)

let test_ring_wraparound () =
  (* native int addition wraps mod 2^63: the ring property shares rely on *)
  let x = max_int in
  Alcotest.(check int) "wrap" min_int (x + 1);
  Alcotest.(check int) "additive inverse" 0 (x + 1 + -(x + 1))

(* ---------------- Prg ---------------- *)

let test_prg_deterministic () =
  let a = Prg.create 42 and b = Prg.create 42 in
  Alcotest.(check vec) "same seed, same stream" (Prg.words a 16) (Prg.words b 16);
  let c = Prg.create 43 in
  Alcotest.(check bool) "different seed differs" false
    (Prg.words (Prg.create 42) 16 = Prg.words c 16)

let test_prg_split_copy () =
  let p = Prg.create 7 in
  let c = Prg.copy p in
  Alcotest.(check int) "copy continues identically" (Prg.word p) (Prg.word c);
  let s1 = Prg.split p 1 and s2 = Prg.split p 2 in
  Alcotest.(check bool) "split streams independent" false
    (Prg.word s1 = Prg.word s2)

let test_prg_int_below () =
  let p = Prg.create 11 in
  for _ = 1 to 500 do
    let x = Prg.int_below p 7 in
    Alcotest.(check bool) "in range" true (x >= 0 && x < 7)
  done;
  (* rough uniformity: each residue appears *)
  let counts = Array.make 5 0 in
  for _ = 1 to 500 do
    counts.(Prg.int_below p 5) <- counts.(Prg.int_below p 5) + 1
  done;
  Array.iter (fun c -> Alcotest.(check bool) "all residues hit" true (c > 0)) counts

(* ---------------- Vec ---------------- *)

let test_vec_ops () =
  let a = [| 1; 2; 3 |] and b = [| 10; 20; 30 |] in
  Alcotest.(check vec) "add" [| 11; 22; 33 |] (Vec.add a b);
  Alcotest.(check vec) "sub" [| 9; 18; 27 |] (Vec.sub b a);
  Alcotest.(check vec) "mul" [| 10; 40; 90 |] (Vec.mul a b);
  Alcotest.(check vec) "xor" [| 11; 22; 29 |] (Vec.xor a b);
  Alcotest.(check vec) "prefix_sum" [| 1; 3; 6 |] (Vec.prefix_sum a);
  Alcotest.(check int) "sum" 6 (Vec.sum a);
  Alcotest.(check vec) "rev" [| 3; 2; 1 |] (Vec.rev a)

let test_vec_gather_scatter () =
  let x = [| 10; 20; 30; 40 |] in
  let p = [| 2; 0; 3; 1 |] in
  let y = Vec.scatter x p in
  Alcotest.(check vec) "scatter" [| 20; 40; 10; 30 |] y;
  Alcotest.(check vec) "gather inverts scatter" x (Vec.gather y p)

let test_vec_concat_split () =
  let a = [| 1; 2 |] and b = [| 3; 4; 5 |] in
  let c = Vec.concat2 a b in
  let a', b' = Vec.split2 c 2 in
  Alcotest.(check vec) "split left" a a';
  Alcotest.(check vec) "split right" b b'

let qcheck_shift_roundtrip =
  QCheck.Test.make ~name:"shift left then right" ~count:50
    QCheck.(pair (array_of_size (Gen.return 8) (int_bound 0xFFFF)) (int_bound 10))
    (fun (a, k) ->
      Vec.shift_right (Vec.shift_left a k) k = a)

(* ---------------- Parallel ---------------- *)

let test_parallel_matches_sequential () =
  let n = 20000 in
  let a = Array.init n (fun i -> i * 3) in
  let b = Array.init n (fun i -> i + 7) in
  let seq = Vec.add a b in
  Parallel.set_num_domains 3;
  Fun.protect
    ~finally:(fun () -> Parallel.set_num_domains 1)
    (fun () ->
      Alcotest.(check vec) "parallel map2" seq (Parallel.map2 ( + ) a b);
      Alcotest.(check vec) "parallel map"
        (Array.map (fun x -> x * 2) a)
        (Parallel.map (fun x -> x * 2) a);
      let prg = Prg.create 5 in
      let p = Orq_shuffle.Localperm.random prg n in
      Alcotest.(check vec) "parallel apply_perm" (Vec.scatter a p)
        (Parallel.apply_perm a p))

let test_chunks () =
  let spans = Parallel.chunks 10 3 in
  Alcotest.(check int) "3 spans" 3 (List.length spans);
  let total = List.fold_left (fun acc (_, len) -> acc + len) 0 spans in
  Alcotest.(check int) "cover all" 10 total

(* ---------------- Comm / Netsim ---------------- *)

let test_comm_tallies () =
  let c = Comm.create ~parties:3 in
  Comm.round c ~bits:100 ~messages:3;
  Comm.traffic c ~bits:50 ~messages:1;
  Comm.rounds_only c 2;
  let t = Comm.snapshot c in
  Alcotest.(check int) "rounds" 3 t.Comm.t_rounds;
  Alcotest.(check int) "bits" 150 t.Comm.t_bits;
  Alcotest.(check int) "messages" 4 t.Comm.t_messages;
  let before = t in
  Comm.round c ~bits:10 ~messages:1;
  let d = Comm.since c before in
  Alcotest.(check int) "since rounds" 1 d.Comm.t_rounds;
  Alcotest.(check int) "since bits" 10 d.Comm.t_bits;
  Alcotest.(check (float 0.001)) "bytes/party" (160. /. 8. /. 3.)
    (Comm.bytes_per_party c (Comm.snapshot c))

let test_netsim () =
  let tl = { Comm.t_rounds = 100; t_bits = 6_000_000_000; t_messages = 1 } in
  (* WAN: 100 rounds x 20ms = 2s; 6Gbit over 6Gbps = 1s *)
  Alcotest.(check (float 0.01)) "wan model" 3.0
    (Netsim.network_time Netsim.wan tl);
  Alcotest.(check bool) "lan cheaper than wan" true
    (Netsim.network_time Netsim.lan tl < Netsim.network_time Netsim.wan tl);
  Alcotest.(check bool) "geo most expensive" true
    (Netsim.network_time Netsim.geo tl > Netsim.network_time Netsim.wan tl);
  Alcotest.(check (float 0.0001)) "local free" 0.
    (Netsim.network_time Netsim.local tl)

let test_netsim_links () =
  (* a synchronous round completes when the slowest link does *)
  let p =
    Netsim.of_links "X"
      [
        { Netsim.l_rtt_s = 0.01; l_bandwidth_bps = 10e9 };
        { Netsim.l_rtt_s = 0.05; l_bandwidth_bps = 2e9 };
      ]
  in
  Alcotest.(check (float 1e-9)) "max rtt" 0.05 p.Netsim.rtt_s;
  Alcotest.(check (float 1e-3)) "min bandwidth" 2e9 p.Netsim.bandwidth_bps;
  Alcotest.(check bool) "four-region profile matches geo" true
    (abs_float (Netsim.geo_four_regions.Netsim.rtt_s -. Netsim.geo.Netsim.rtt_s) < 1e-9)

let test_comm_invariants () =
  (* metering invariants guard the leakage certificate's bookkeeping: under
     ORQ_DEBUG_CHECKS a tally can never go negative and a fusion refund can
     never exceed what was actually recorded *)
  let was = Orq_util.Debug.enabled () in
  Fun.protect
    ~finally:(fun () -> Orq_util.Debug.set_checks was)
    (fun () ->
      Orq_util.Debug.set_checks true;
      let c = Comm.create ~parties:3 in
      Comm.round c ~bits:100 ~messages:2;
      Comm.round c ~bits:50 ~messages:2;
      Alcotest.check_raises "refund beyond recorded rounds"
        (Invalid_argument
           "Comm.refund_rounds: refund of 3 exceeds the 2 recorded rounds")
        (fun () -> Comm.refund_rounds c 3);
      Alcotest.check_raises "negative refund"
        (Invalid_argument
           "Comm.refund_rounds: refund of -1 exceeds the 2 recorded rounds")
        (fun () -> Comm.refund_rounds c (-1));
      Alcotest.check_raises "negative barrier count"
        (Invalid_argument "Comm.rounds_only: negative count -2") (fun () ->
          Comm.rounds_only c (-2));
      Alcotest.check_raises "negative traffic bits"
        (Invalid_argument "Comm.traffic: negative traffic (bits=-5 messages=1)")
        (fun () -> Comm.traffic c ~bits:(-5) ~messages:1);
      Alcotest.check_raises "negative round messages"
        (Invalid_argument "Comm.round: negative traffic (bits=8 messages=-1)")
        (fun () -> Comm.round c ~bits:8 ~messages:(-1));
      (* legal refund still works with checks on *)
      Comm.refund_rounds c 1;
      Alcotest.(check int) "rounds after legal refund" 1 c.Comm.rounds;
      (* with checks off the guards are skipped (hot-path default) *)
      Orq_util.Debug.set_checks false;
      Comm.rounds_only c 5;
      Alcotest.(check int) "barrier adds rounds" 6 c.Comm.rounds)

let suite =
  [
    Alcotest.test_case "ring helpers" `Quick test_ring;
    Alcotest.test_case "ring wraparound" `Quick test_ring_wraparound;
    Alcotest.test_case "prg determinism" `Quick test_prg_deterministic;
    Alcotest.test_case "prg split/copy" `Quick test_prg_split_copy;
    Alcotest.test_case "prg int_below" `Quick test_prg_int_below;
    Alcotest.test_case "vec ops" `Quick test_vec_ops;
    Alcotest.test_case "vec gather/scatter" `Quick test_vec_gather_scatter;
    Alcotest.test_case "vec concat/split" `Quick test_vec_concat_split;
    QCheck_alcotest.to_alcotest qcheck_shift_roundtrip;
    Alcotest.test_case "parallel matches sequential" `Quick
      test_parallel_matches_sequential;
    Alcotest.test_case "parallel chunks" `Quick test_chunks;
    Alcotest.test_case "comm tallies" `Quick test_comm_tallies;
    Alcotest.test_case "comm metering invariants" `Quick test_comm_invariants;
    Alcotest.test_case "netsim model" `Quick test_netsim;
    Alcotest.test_case "netsim multi-link profiles" `Quick test_netsim_links;
  ]

let () = Alcotest.run "orq_util" [ ("util", suite) ]
