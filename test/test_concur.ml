(* Tests for the concurrency discipline: the static analyzer
   (lib/analysis/concur.ml + lockmap.ml) on seeded snippets, the runtime
   held-stack checker (lib/util/locked.ml) under ORQ_DEBUG_CHECKS, and
   regression stress tests for the two PR 9 chunk-store bugs — the
   finaliser mutex deadlock and the stale spill-slot read — both run
   with the runtime checker active. *)

module Concur = Orq_analysis.Concur
module Lockmap = Orq_analysis.Lockmap
module Locked = Orq_util.Locked
module Debug = Orq_util.Debug
module Chunkvec = Orq_util.Chunkvec

(* ------------------------------------------------------------------ *)
(* Static analyzer                                                     *)
(* ------------------------------------------------------------------ *)

let rules src ~filename =
  List.map
    (fun (f : Concur.finding) -> Lockmap.rule_label f.Concur.c_rule)
    (Concur.lint_string ~filename src)

let check_rules name expected ~filename src =
  Alcotest.(check (list string)) name expected (rules ~filename src)

let test_registry () =
  check_rules "raw Mutex.create" [ "registry" ] ~filename:"a.ml"
    "let m = Mutex.create ()";
  check_rules "unregistered name" [ "registry" ] ~filename:"a.ml"
    {|let a = Locked.create ~name:"nope" ~rank:5 ()|};
  check_rules "wrong rank" [ "registry" ] ~filename:"a.ml"
    {|let b = Locked.create ~name:"service" ~rank:11 ()|};
  check_rules "non-literal rank" [ "registry" ] ~filename:"a.ml"
    {|let r = 7
      let c = Locked.create ~name:"service" ~rank:r ()|};
  check_rules "registered create is clean" [] ~filename:"a.ml"
    {|let a = Locked.create ~name:"service" ~rank:10 ()|};
  check_rules "unstructured Locked.lock" [ "registry" ] ~filename:"a.ml"
    {|let a = Locked.create ~name:"service" ~rank:10 ()
      let f () = Locked.lock a|}

let lock_pair =
  {|let a = Locked.create ~name:"service" ~rank:10 ()
    let b = Locked.create ~name:"jobqueue" ~rank:20 ()
|}

let test_order () =
  check_rules "increasing ranks are clean" [] ~filename:"a.ml"
    (lock_pair
   ^ {|let ok () = Locked.with_lock a (fun () -> Locked.with_lock b (fun () -> 0))|}
    );
  check_rules "inversion" [ "order" ] ~filename:"a.ml"
    (lock_pair
   ^ {|let bad () = Locked.with_lock b (fun () -> Locked.with_lock a (fun () -> 0))|}
    );
  check_rules "same lock reentry" [ "order" ] ~filename:"a.ml"
    (lock_pair
   ^ {|let bad () = Locked.with_lock a (fun () -> Locked.with_lock a (fun () -> 0))|}
    );
  check_rules "wait on innermost is clean" [] ~filename:"a.ml"
    (lock_pair
   ^ {|let c = Condition.create ()
       let ok () = Locked.with_lock a (fun () -> Locked.with_lock b (fun () -> Locked.wait b c))|}
    );
  check_rules "wait on non-innermost" [ "order" ] ~filename:"a.ml"
    (lock_pair
   ^ {|let c = Condition.create ()
       let bad () = Locked.with_lock a (fun () -> Locked.with_lock b (fun () -> Locked.wait a c))|}
    )

(* The chunkvec idiom: a local [locked] wrapper, blocking I/O reached
   through a same-file helper. The identical source is a violation in an
   unknown module and clean in Chunkvec, where lockmap.ml carries the
   audited spill-I/O exemption for exactly that site. *)
let spill_src =
  {|let mutex = Locked.create ~name:"chunkvec" ~rank:70 ()
    let locked f = Locked.with_lock mutex (fun () -> f ())
    let write_slot fd b = ignore (Unix.write fd b 0 (Bytes.length b))
    let spill fd b = locked (fun () -> write_slot fd b)|}

let test_blocking () =
  check_rules "sleep under lock" [ "blocking" ] ~filename:"a.ml"
    (lock_pair ^ {|let bad () = Locked.with_lock a (fun () -> Unix.sleepf 0.1)|});
  check_rules "blocking through helper and wrapper" [ "blocking" ]
    ~filename:"mystore.ml" spill_src;
  check_rules "audited chunkvec spill site is exempt" []
    ~filename:"chunkvec.ml" spill_src;
  check_rules "sleep outside the region is clean" [] ~filename:"a.ml"
    (lock_pair
   ^ {|let ok () = Locked.with_lock a (fun () -> 0) + (Unix.sleepf 0.1; 1)|})

let test_shared () =
  check_rules "toplevel Hashtbl in Thread.create closure" [ "shared" ]
    ~filename:"a.ml"
    {|let tbl = Hashtbl.create 8
      let go () = Thread.create (fun () -> Hashtbl.replace tbl 1 2) ()|};
  check_rules "toplevel ref in Domain.spawn closure" [ "shared" ]
    ~filename:"a.ml"
    {|let hits = ref 0
      let go () = Domain.spawn (fun () -> incr hits)|};
  check_rules "Atomic state is clean" [] ~filename:"a.ml"
    {|let hits = Atomic.make 0
      let go () = Domain.spawn (fun () -> Atomic.incr hits)|};
  check_rules "local ref is clean" [] ~filename:"a.ml"
    {|let go () =
        let local = ref 0 in
        Thread.create (fun () -> incr local) ()|}

let test_finaliser () =
  let fin =
    {|let m = Locked.create ~name:"parallel" ~rank:60 ()
      let fin t = Locked.with_lock m (fun () -> ignore t)
|}
  in
  check_rules "guarded finaliser is clean" [] ~filename:"a.ml"
    (fin ^ {|let attach v = Gc.finalise (Locked.finaliser_guard fin) v|});
  check_rules "locking finaliser" [ "finaliser" ] ~filename:"a.ml"
    (fin ^ {|let attach v = Gc.finalise fin v|});
  check_rules "lock-free finaliser is clean" [] ~filename:"a.ml"
    {|let fin t = ignore t
      let attach v = Gc.finalise fin v|}

let test_lockmap () =
  let names = List.map (fun l -> l.Lockmap.lk_name) Lockmap.locks in
  let ranks = List.map (fun l -> l.Lockmap.lk_rank) Lockmap.locks in
  Alcotest.(check int)
    "names are distinct"
    (List.length names)
    (List.length (List.sort_uniq compare names));
  Alcotest.(check int)
    "ranks are distinct (total order)"
    (List.length ranks)
    (List.length (List.sort_uniq compare ranks));
  List.iter
    (fun l ->
      Alcotest.(check bool)
        (l.Lockmap.lk_name ^ " has a written justification")
        true
        (String.length l.Lockmap.lk_why > 40))
    Lockmap.locks;
  List.iter
    (fun e ->
      Alcotest.(check bool)
        (e.Lockmap.ex_site ^ " exemption has a written justification")
        true
        (String.length e.Lockmap.ex_why > 40))
    Lockmap.blocking_exempts;
  Alcotest.(check bool)
    "chunkvec is the innermost rank" true
    (List.for_all
       (fun l ->
         l.Lockmap.lk_name = "chunkvec"
         || l.Lockmap.lk_rank < (Option.get (Lockmap.rank_of "chunkvec")))
       Lockmap.locks)

(* ------------------------------------------------------------------ *)
(* Runtime checker                                                     *)
(* ------------------------------------------------------------------ *)

let with_checks f =
  let was = Debug.enabled () in
  Debug.set_checks true;
  Fun.protect ~finally:(fun () -> Debug.set_checks was) f

let raises_discipline f =
  match f () with
  | _ -> false
  | exception Locked.Discipline _ -> true

let test_runtime_order () =
  with_checks @@ fun () ->
  let a = Locked.create ~name:"outer" ~rank:10 () in
  let b = Locked.create ~name:"inner" ~rank:20 () in
  Locked.with_lock a (fun () ->
      Locked.with_lock b (fun () ->
          Alcotest.(check (list string))
            "held stack innermost-first" [ "inner"; "outer" ]
            (Locked.held_names ())));
  Alcotest.(check (list string)) "released" [] (Locked.held_names ());
  Alcotest.(check bool) "inversion raises" true
    (raises_discipline (fun () ->
         Locked.with_lock b (fun () -> Locked.with_lock a (fun () -> ()))));
  Alcotest.(check bool) "still consistent after the failure" true
    (Locked.held_names () = []);
  let b' = Locked.create ~name:"inner2" ~rank:20 () in
  Alcotest.(check bool) "equal rank raises" true
    (raises_discipline (fun () ->
         Locked.with_lock b (fun () -> Locked.with_lock b' (fun () -> ()))))

let test_runtime_wait () =
  with_checks @@ fun () ->
  let a = Locked.create ~name:"outer" ~rank:10 () in
  let b = Locked.create ~name:"inner" ~rank:20 () in
  let c = Condition.create () in
  Alcotest.(check bool) "wait without holding raises" true
    (raises_discipline (fun () -> Locked.wait a c));
  Alcotest.(check bool) "wait on non-innermost raises" true
    (raises_discipline (fun () ->
         Locked.with_lock a (fun () ->
             Locked.with_lock b (fun () -> Locked.wait a c))));
  (* the positive path: a real handoff through the innermost lock *)
  let flag = ref false in
  let th =
    Thread.create
      (fun () ->
        Thread.delay 0.02;
        Locked.with_lock b (fun () ->
            flag := true;
            Condition.broadcast c))
      ()
  in
  Locked.with_lock b (fun () ->
      while not !flag do
        Locked.wait b c
      done);
  Thread.join th;
  Alcotest.(check bool) "handoff completed" true !flag

let test_runtime_finaliser () =
  with_checks @@ fun () ->
  let a = Locked.create ~name:"outer" ~rank:10 () in
  Alcotest.(check bool) "guard forbids acquisition" true
    (raises_discipline (fun () ->
         Locked.finaliser_guard
           (fun () -> Locked.with_lock a (fun () -> ()))
           ()));
  (* lock-free bodies are fine, and the guard depth unwinds *)
  Locked.finaliser_guard ignore ();
  Locked.with_lock a (fun () -> ());
  Alcotest.(check (list string)) "consistent after guard" []
    (Locked.held_names ())

let test_checks_off () =
  let was = Debug.enabled () in
  Debug.set_checks false;
  Fun.protect ~finally:(fun () -> Debug.set_checks was) @@ fun () ->
  let a = Locked.create ~name:"outer" ~rank:10 () in
  let b = Locked.create ~name:"inner" ~rank:20 () in
  (* with checks off the wrapper is a plain mutex: no tracking, no raise *)
  Locked.with_lock b (fun () -> Locked.with_lock a (fun () -> ()));
  Alcotest.(check (list string)) "no tracking" [] (Locked.held_names ())

(* ------------------------------------------------------------------ *)
(* PR 9 regression stress tests (runtime checker active)               *)
(* ------------------------------------------------------------------ *)

(* run [f] with streaming knobs set and the runtime checker on,
   restoring all global state afterwards *)
let with_stress ?(rows = 7) ~budget f =
  with_checks @@ fun () ->
  let rows0 = Chunkvec.chunk_rows () in
  let budget0 = Chunkvec.budget () in
  let on0 = Chunkvec.streaming_enabled () in
  Chunkvec.set_chunk_rows rows;
  Chunkvec.set_budget budget;
  Fun.protect
    ~finally:(fun () ->
      Chunkvec.set_chunk_rows rows0;
      Chunkvec.set_budget budget0;
      Chunkvec.set_streaming on0)
    f

(* PR 9 bug 1: a GC finaliser firing while this very thread holds the
   store mutex used to deadlock; the fix hands dead chunks to a
   lock-free graveyard reaped on the next locked entry. Hammer exactly
   that path: allocate tracked vectors, drop the references, and force
   full majors while continually re-entering the store lock — with the
   runtime checker on, any finaliser that touched a registered lock
   would raise [Locked.Discipline] instead of deadlocking. *)
let test_finaliser_pressure () =
  with_stress ~rows:7 ~budget:(64 * 8) @@ fun () ->
  let keep = Chunkvec.of_array (Array.init 40 (fun i -> i * 3)) in
  for round = 1 to 60 do
    (* garbage: tracked vectors that die immediately *)
    for i = 0 to 20 do
      ignore (Chunkvec.of_array (Array.init 23 (fun j -> (round * 100) + i + j)))
    done;
    Gc.full_major ();
    (* re-enter the store lock (reaps the graveyard) under pressure *)
    let doubled = Chunkvec.map (Array.map (fun x -> x * 2)) keep in
    Alcotest.(check int)
      "mapped under finaliser pressure" (2 * 3 * 39)
      (Chunkvec.get doubled 39)
  done;
  Alcotest.(check (array int))
    "survivor intact after 60 rounds"
    (Array.init 40 (fun i -> i * 3))
    (Chunkvec.to_array keep);
  Chunkvec.dispose keep;
  Gc.full_major ()

(* PR 9 bug 2: spill slots freed on one budget and reused on another
   were read back stale through buffered channels; the fix uses one raw
   fd under the store lock. Churn eviction/fault cycles across shrinking
   and growing budgets so slots are freed and reused repeatedly, and
   check every vector still reads back exactly. *)
let test_spill_churn () =
  with_stress ~rows:5 ~budget:4096 @@ fun () ->
  let mk i = Array.init 37 (fun j -> (i * 1000) + j) in
  let vs = Array.init 8 (fun i -> (mk i, Chunkvec.of_array (mk i))) in
  let budgets = [| 120; 4096; 240; 80; 2048; 160 |] in
  for round = 0 to 29 do
    Chunkvec.set_budget budgets.(round mod Array.length budgets);
    Array.iteri
      (fun i (expect, v) ->
        (* fault every chunk back in and compare *)
        if round mod 2 = i mod 2 then
          Alcotest.(check (array int))
            (Printf.sprintf "round %d vector %d" round i)
            expect (Chunkvec.to_array v))
      vs;
    (* dying tracked garbage keeps the graveyard busy while slots churn *)
    ignore (Chunkvec.of_array (Array.init 31 (fun j -> round + j)));
    if round mod 5 = 0 then Gc.full_major ()
  done;
  let st = Chunkvec.stats () in
  Alcotest.(check bool) "the churn actually spilled" true (st.Chunkvec.st_spills > 0);
  Alcotest.(check bool) "the churn actually faulted" true (st.Chunkvec.st_faults > 0);
  Array.iter
    (fun (expect, v) ->
      Alcotest.(check (array int)) "final readback" expect (Chunkvec.to_array v);
      Chunkvec.dispose v)
    vs

let () =
  Alcotest.run "orq_concur"
    [
      ( "concur",
        [
          Alcotest.test_case "static: registry" `Quick test_registry;
          Alcotest.test_case "static: lock order" `Quick test_order;
          Alcotest.test_case "static: blocking under lock" `Quick test_blocking;
          Alcotest.test_case "static: shared mutability" `Quick test_shared;
          Alcotest.test_case "static: finaliser safety" `Quick test_finaliser;
          Alcotest.test_case "lockmap registry sanity" `Quick test_lockmap;
          Alcotest.test_case "runtime: rank order" `Quick test_runtime_order;
          Alcotest.test_case "runtime: wait discipline" `Quick test_runtime_wait;
          Alcotest.test_case "runtime: finaliser guard" `Quick
            test_runtime_finaliser;
          Alcotest.test_case "runtime: checks off" `Quick test_checks_off;
          Alcotest.test_case "stress: finaliser pressure" `Quick
            test_finaliser_pressure;
          Alcotest.test_case "stress: spill slot churn" `Quick test_spill_churn;
        ] );
    ]
