(* Tests for the oblivious sorting layer: genBitPerm, hybrid radixsort,
   compose-based radixsort, iterative quicksort, bitonic network, and the
   sorting wrapper with permutation extraction. *)

open Orq_util
open Orq_proto
open Orq_sort

let kinds = Ctx.all_kinds
let vec = Alcotest.(array int)
let for_all_kinds f = List.iter (fun k -> f (Ctx.create ~seed:33 k)) kinds

let sorted_asc a =
  let b = Array.copy a in
  Array.sort compare b;
  b

let sorted_desc a =
  let b = sorted_asc a in
  Vec.rev b

let is_sorted a = Array.for_all2 ( = ) a (sorted_asc a)

(* ---------------- genBitPerm ---------------- *)

let test_genbitperm () =
  for_all_kinds (fun ctx ->
      let bits = [| 1; 0; 1; 0; 0; 1; 0 |] in
      let sigma =
        Genbitperm.gen ctx (Mpc.share_b ctx bits) |> Share.reconstruct
      in
      (* stable: zeros keep order at the front, ones after *)
      Alcotest.(check vec) "destinations" [| 4; 0; 5; 1; 2; 6; 3 |] sigma)

let qcheck_genbitperm =
  QCheck.Test.make ~name:"genBitPerm is the stable bit-sort permutation"
    ~count:25
    QCheck.(list_of_size Gen.(int_range 1 40) bool)
    (fun bl ->
      let bits = Array.of_list (List.map (fun b -> if b then 1 else 0) bl) in
      List.for_all
        (fun k ->
          let ctx = Ctx.create ~seed:17 k in
          let sigma =
            Genbitperm.gen ctx (Mpc.share_b ctx bits) |> Share.reconstruct
          in
          Orq_shuffle.Localperm.is_permutation sigma
          && is_sorted (Orq_shuffle.Localperm.apply bits sigma))
        kinds)

(* ---------------- radixsort ---------------- *)

let test_radix_basic () =
  for_all_kinds (fun ctx ->
      let x = [| 9; 3; 7; 3; 0; 15; 3; 8 |] in
      let y, _ = Radixsort.sort ctx ~bits:4 (Mpc.share_b ctx x) [] in
      Alcotest.(check vec) "ascending" (sorted_asc x) (Share.reconstruct y))

let test_radix_desc () =
  for_all_kinds (fun ctx ->
      let x = [| 9; 3; 7; 3; 0; 15; 3; 8 |] in
      let y, _ =
        Radixsort.sort ctx ~bits:4 ~dir:Radixsort.Desc (Mpc.share_b ctx x) []
      in
      Alcotest.(check vec) "descending" (sorted_desc x) (Share.reconstruct y))

let test_radix_carry_and_stability () =
  for_all_kinds (fun ctx ->
      (* carry column records original position; equal keys must keep
         their original relative order (stability) *)
      let x = [| 5; 1; 5; 1; 5; 0 |] in
      let pos = [| 0; 1; 2; 3; 4; 5 |] in
      let y, carry =
        Radixsort.sort ctx ~bits:3 (Mpc.share_b ctx x)
          [ Mpc.share_b ctx pos ]
      in
      Alcotest.(check vec) "keys" [| 0; 1; 1; 5; 5; 5 |] (Share.reconstruct y);
      match carry with
      | [ c ] ->
          Alcotest.(check vec) "stable carry" [| 5; 1; 3; 0; 2; 4 |]
            (Share.reconstruct c)
      | _ -> Alcotest.fail "arity")

let test_radix_skip () =
  for_all_kinds (fun ctx ->
      (* sorting on bits [2..3] only groups by the high part *)
      let x = [| 0b1100; 0b0001; 0b1000; 0b0111 |] in
      let y, _ =
        Radixsort.sort ctx ~bits:2 ~skip:2 (Mpc.share_b ctx x) []
      in
      Alcotest.(check vec) "high bits sorted" [| 0b0001; 0b0111; 0b1000; 0b1100 |]
        (Share.reconstruct y))

let qcheck_radix =
  QCheck.Test.make ~name:"radixsort sorts" ~count:15
    QCheck.(list_of_size Gen.(int_range 1 50) (int_bound 1023))
    (fun xl ->
      let x = Array.of_list xl in
      List.for_all
        (fun k ->
          let ctx = Ctx.create ~seed:19 k in
          let y, _ = Radixsort.sort ctx ~bits:10 (Mpc.share_b ctx x) [] in
          Share.reconstruct y = sorted_asc x)
        kinds)

(* ---------------- compose-based radixsort (Asharov) ---------------- *)

let test_radix_compose_matches () =
  for_all_kinds (fun ctx ->
      let x = [| 12; 4; 4; 30; 0; 7; 19; 7 |] in
      let y, _ = Radix_compose.sort ctx ~bits:5 (Mpc.share_b ctx x) [] in
      Alcotest.(check vec) "compose variant sorts" (sorted_asc x)
        (Share.reconstruct y))

let test_radix_compose_perm () =
  for_all_kinds (fun ctx ->
      let x = [| 3; 1; 2; 0 |] in
      let (_, _), sigma =
        Radix_compose.sort_with_perm ctx ~bits:2 (Mpc.share_b ctx x) []
      in
      let s = Share.reconstruct sigma in
      Alcotest.(check bool) "perm" true (Orq_shuffle.Localperm.is_permutation s);
      Alcotest.(check vec) "perm sorts input" (sorted_asc x)
        (Orq_shuffle.Localperm.apply x s))

let test_hybrid_fewer_rounds () =
  (* the paper's Appendix B.3 claim: the hybrid saves rounds vs compose *)
  List.iter
    (fun k ->
      let run f =
        let ctx = Ctx.create ~seed:23 k in
        let x = Mpc.share_b ctx (Array.init 32 (fun i -> (i * 37) land 255)) in
        let before = Orq_net.Comm.snapshot ctx.Ctx.comm in
        f ctx x;
        (Orq_net.Comm.since ctx.Ctx.comm before).Orq_net.Comm.t_rounds
      in
      let hybrid = run (fun ctx x -> ignore (Radixsort.sort ctx ~bits:8 x [])) in
      let compose =
        run (fun ctx x -> ignore (Radix_compose.sort ctx ~bits:8 x []))
      in
      Alcotest.(check bool)
        (Ctx.kind_label k ^ " hybrid fewer rounds")
        true (hybrid < compose))
    kinds

(* ---------------- quicksort ---------------- *)

let test_quicksort_unique () =
  for_all_kinds (fun ctx ->
      let x = [| 42; 17; 99; 3; 55; 21; 0; 63; 8 |] in
      match
        Quicksort.sort ctx
          ~keys:[ { Quicksort.col = Mpc.share_b ctx x; width = 8; dir = Asc } ]
          []
      with
      | [ y ], [] ->
          Alcotest.(check vec) "sorted" (sorted_asc x) (Share.reconstruct y)
      | _ -> Alcotest.fail "arity")

let test_quicksort_desc_carry () =
  for_all_kinds (fun ctx ->
      let x = [| 4; 9; 1; 6 |] in
      let tag = [| 40; 90; 10; 60 |] in
      match
        Quicksort.sort ctx
          ~keys:[ { Quicksort.col = Mpc.share_b ctx x; width = 8; dir = Desc } ]
          [ Mpc.share_b ctx tag ]
      with
      | [ y ], [ t ] ->
          Alcotest.(check vec) "desc keys" [| 9; 6; 4; 1 |]
            (Share.reconstruct y);
          Alcotest.(check vec) "carry follows" [| 90; 60; 40; 10 |]
            (Share.reconstruct t)
      | _ -> Alcotest.fail "arity")

let test_quicksort_composite () =
  for_all_kinds (fun ctx ->
      let k1 = [| 2; 1; 2; 1 |] and k2 = [| 0; 5; 3; 2 |] in
      match
        Quicksort.sort ctx
          ~keys:
            [
              { Quicksort.col = Mpc.share_b ctx k1; width = 4; dir = Asc };
              { Quicksort.col = Mpc.share_b ctx k2; width = 4; dir = Desc };
            ]
          []
      with
      | [ a; b ], [] ->
          Alcotest.(check vec) "k1" [| 1; 1; 2; 2 |] (Share.reconstruct a);
          Alcotest.(check vec) "k2 desc within k1" [| 5; 2; 3; 0 |]
            (Share.reconstruct b)
      | _ -> Alcotest.fail "arity")

let qcheck_quicksort =
  QCheck.Test.make ~name:"quicksort sorts unique keys" ~count:15
    QCheck.(int_bound 1000)
    (fun seed ->
      let prg = Prg.create (seed + 71) in
      let n = 1 + Prg.int_below prg 60 in
      (* unique keys via a random permutation *)
      let x =
        Array.map (fun i -> i * 3) (Orq_shuffle.Localperm.random prg n)
      in
      List.for_all
        (fun k ->
          let ctx = Ctx.create ~seed:(seed + 5) k in
          match
            Quicksort.sort ctx
              ~keys:
                [ { Quicksort.col = Mpc.share_b ctx x; width = 16; dir = Asc } ]
              []
          with
          | [ y ], [] -> Share.reconstruct y = sorted_asc x
          | _ -> false)
        kinds)

(* ---------------- bitonic ---------------- *)

let test_bitonic () =
  for_all_kinds (fun ctx ->
      let x = [| 7; 7; 2; 9; 0; 2; 5; 1 |] in
      match
        Bitonic.sort ctx
          ~keys:[ { Bitonic.col = Mpc.share_b ctx x; width = 4; dir = Asc } ]
          []
      with
      | [ y ], [] ->
          Alcotest.(check vec) "bitonic sorts with duplicates" (sorted_asc x)
            (Share.reconstruct y)
      | _ -> Alcotest.fail "arity")

let qcheck_bitonic =
  QCheck.Test.make ~name:"bitonic sorts" ~count:10
    QCheck.(list_of_size (Gen.return 16) (int_bound 31))
    (fun xl ->
      let x = Array.of_list xl in
      List.for_all
        (fun k ->
          let ctx = Ctx.create ~seed:29 k in
          match
            Bitonic.sort ctx
              ~keys:[ { Bitonic.col = Mpc.share_b ctx x; width = 5; dir = Asc } ]
              []
          with
          | [ y ], [] -> Share.reconstruct y = sorted_asc x
          | _ -> false)
        kinds)

(* ---------------- wrapper ---------------- *)

let check_wrapper ctx algo dir x =
  let expected =
    match dir with Sortwrap.Asc -> sorted_asc x | Sortwrap.Desc -> sorted_desc x
  in
  let key = Mpc.share_b ctx x in
  let tag = Mpc.share_b ctx (Array.mapi (fun i _ -> 100 + i) x) in
  let key', carry', sigma =
    Sortwrap.sort_with_perm ctx ~algo ~dir ~w:8 key [ tag ]
  in
  Alcotest.(check vec) "wrapper sorts" expected (Share.reconstruct key');
  (* sigma must send the original rows to their sorted positions *)
  let s = Share.reconstruct sigma in
  Alcotest.(check bool) "sigma is a permutation" true
    (Orq_shuffle.Localperm.is_permutation s);
  Alcotest.(check vec) "sigma sorts the input" expected
    (Orq_shuffle.Localperm.apply x s);
  (* carried column moved under the same permutation *)
  match carry' with
  | [ t ] ->
      let tags = Share.reconstruct t in
      Alcotest.(check vec) "carry consistent"
        (Orq_shuffle.Localperm.apply (Array.mapi (fun i _ -> 100 + i) x) s)
        tags
  | _ -> Alcotest.fail "arity"

let test_wrapper_all () =
  for_all_kinds (fun ctx ->
      let x = [| 12; 3; 200; 3; 77; 0; 12; 150 |] in
      check_wrapper ctx Sortwrap.Radixsort Sortwrap.Asc x;
      check_wrapper ctx Sortwrap.Radixsort Sortwrap.Desc x;
      check_wrapper ctx Sortwrap.Quicksort Sortwrap.Asc x;
      check_wrapper ctx Sortwrap.Quicksort Sortwrap.Desc x)

let test_wrapper_stability () =
  (* equal keys keep their original order for both algorithms *)
  for_all_kinds (fun ctx ->
      List.iter
        (fun algo ->
          let x = [| 1; 0; 1; 0; 1 |] in
          let pos = [| 0; 1; 2; 3; 4 |] in
          let _, carry', _ =
            Sortwrap.sort_with_perm ctx ~algo ~dir:Sortwrap.Asc ~w:2
              (Mpc.share_b ctx x)
              [ Mpc.share_b ctx pos ]
          in
          match carry' with
          | [ c ] ->
              Alcotest.(check vec) "stable" [| 1; 3; 0; 2; 4 |]
                (Share.reconstruct c)
          | _ -> Alcotest.fail "arity")
        [ Sortwrap.Radixsort; Sortwrap.Quicksort ])

let test_triple_budget () =
  (* Appendix B.4: the 2 n lg n budget exceeds the expectation by at least
     43% for n >= 1300, with overflow probability below 2^-10 *)
  List.iter
    (fun n ->
      Alcotest.(check bool)
        (Printf.sprintf "budget > expectation at n=%d" n)
        true
        (float_of_int (Triple_budget.comparison_budget n)
        > Triple_budget.expected_comparisons n))
    [ 10; 100; 1300; 100_000 ];
  Alcotest.(check bool) "epsilon >= 0.43 at n=1300" true
    (Triple_budget.epsilon 1300 >= 0.43);
  Alcotest.(check bool) "overflow prob < 2^-10 at n=10000" true
    (Triple_budget.overflow_probability_bound 10_000 < 1. /. 1024.);
  Alcotest.(check bool) "small-n additive buffer" true
    (Triple_budget.comparison_budget 100 > 10_000);
  Alcotest.(check bool) "per-sort triples scale with width" true
    (Triple_budget.triples_for_sort ~n:1000 ~w:64 ~perm_bits:32
    > Triple_budget.triples_for_sort ~n:1000 ~w:32 ~perm_bits:32)

let test_default_algo () =
  Alcotest.(check bool) "narrow keys use radixsort" true
    (Sortwrap.default_algo_for_width 32 = Sortwrap.Radixsort);
  Alcotest.(check bool) "wide keys use quicksort" true
    (Sortwrap.default_algo_for_width 64 = Sortwrap.Quicksort)

let suite =
  [
    Alcotest.test_case "genBitPerm destinations" `Quick test_genbitperm;
    QCheck_alcotest.to_alcotest qcheck_genbitperm;
    Alcotest.test_case "radixsort basic" `Quick test_radix_basic;
    Alcotest.test_case "radixsort descending" `Quick test_radix_desc;
    Alcotest.test_case "radixsort carry + stability" `Quick
      test_radix_carry_and_stability;
    Alcotest.test_case "radixsort skip bits" `Quick test_radix_skip;
    QCheck_alcotest.to_alcotest qcheck_radix;
    Alcotest.test_case "compose radixsort sorts" `Quick
      test_radix_compose_matches;
    Alcotest.test_case "compose radixsort perm" `Quick test_radix_compose_perm;
    Alcotest.test_case "hybrid beats compose on rounds" `Quick
      test_hybrid_fewer_rounds;
    Alcotest.test_case "quicksort unique keys" `Quick test_quicksort_unique;
    Alcotest.test_case "quicksort desc + carry" `Quick test_quicksort_desc_carry;
    Alcotest.test_case "quicksort composite keys" `Quick test_quicksort_composite;
    QCheck_alcotest.to_alcotest qcheck_quicksort;
    Alcotest.test_case "bitonic with duplicates" `Quick test_bitonic;
    QCheck_alcotest.to_alcotest qcheck_bitonic;
    Alcotest.test_case "wrapper: all algos and directions" `Quick
      test_wrapper_all;
    Alcotest.test_case "wrapper: stability" `Quick test_wrapper_stability;
    Alcotest.test_case "quicksort triple budget (B.4)" `Quick
      test_triple_budget;
    Alcotest.test_case "default algorithm choice" `Quick test_default_algo;
  ]

let () = Alcotest.run "orq_sort" [ ("sort", suite) ]
