(* The leakage-analysis layer: lint rules and allowlist discipline,
   transcript recorder mechanics, closed-form cost model vs the metering
   layer, and the shape-twin certifier on live queries. *)

open Orq_proto
module Comm = Orq_net.Comm
module Lint = Orq_analysis.Lint
module Declass = Orq_analysis.Declass
module Costmodel = Orq_analysis.Costmodel
module Certify = Orq_analysis.Certify

let event_t = Alcotest.testable Comm.pp_event Comm.event_equal

(* ---------------- lint ---------------- *)

(* The fixture directory is not compiled, so the seeded violations are
   embedded here as source text: the lint must flag all three rules. *)
let leaky_src =
  {|
let leak ctx xs =
  let opened = Mpc.open_ ctx xs in
  let total = ref 0 in
  for i = 0 to Vec.length opened - 1 do
    if Vec.get opened i = 1 then incr total
  done;
  !total

let racy ctx x y = Parallel.map (fun _ -> Mpc.band ctx x y) [ 1; 2 ]
|}

let test_lint_flags_seeded_violations () =
  let fs = Lint.lint_string ~filename:"fixture/seeded.ml" leaky_src in
  let vs = Lint.violations fs in
  let has rule callee =
    List.exists
      (fun (f : Lint.finding) -> f.Lint.f_rule = rule && f.Lint.f_callee = callee)
      vs
  in
  Alcotest.(check bool) "unregistered open_ flagged" true
    (has Declass.Declass "open_");
  Alcotest.(check bool) "for bound on opened value flagged" true
    (has Declass.Branch "for");
  Alcotest.(check bool) "if on opened value flagged" true
    (has Declass.Branch "if");
  Alcotest.(check bool) "Mpc inside Parallel lambda flagged" true
    (has Declass.In_parallel "map");
  (* site naming: Module.function from the filename + top-level binding *)
  List.iter
    (fun (f : Lint.finding) ->
      Alcotest.(check bool) "site module is Seeded" true
        (String.length f.Lint.f_site > 7
        && String.sub f.Lint.f_site 0 7 = "Seeded."))
    vs

let test_lint_clean_code_passes () =
  let clean_src =
    {|
let dot ctx x y =
  let p = Mpc.mul ctx x y in
  let n = Share.length p in
  if n > 0 then Some p else None
|}
  in
  let fs = Lint.lint_string ~filename:"fixture/clean.ml" clean_src in
  Alcotest.(check int) "no findings on clean code" 0 (List.length fs)

let test_lint_audited_tree_is_registered () =
  (* every allowlist entry used by the live tree resolves; leaky entries
     are confined to baselines *)
  List.iter
    (fun (e : Declass.entry) ->
      if e.Declass.d_leaky then
        Alcotest.(check bool)
          (e.Declass.d_site ^ " leaky entries name baseline modules")
          true
          (String.length e.Declass.d_site >= 5
          && String.sub e.Declass.d_site 0 5 = "Leaky");
      Alcotest.(check bool)
        (e.Declass.d_site ^ " has a written justification")
        true
        (String.length e.Declass.d_why > 20))
    Declass.all

(* ---------------- recorder mechanics ---------------- *)

let test_recorder_ring_and_labels () =
  let c = Comm.create ~parties:3 in
  Alcotest.(check bool) "off by default" false (Comm.recording c);
  Comm.round c ~bits:10 ~messages:1;
  Alcotest.(check int) "no events recorded when off" 0 (Comm.recorded_events c);
  Comm.start_recording ~capacity:4 c;
  Comm.push_label c "op";
  Comm.push_label c "inner";
  Comm.round c ~bits:7 ~messages:3;
  Comm.pop_label c;
  Comm.traffic c ~bits:5 ~messages:1;
  Comm.pop_label c;
  let tr = Comm.transcript c in
  Alcotest.(check int) "two events" 2 (Array.length tr);
  Alcotest.(check string) "nested label" "op/inner" tr.(0).Comm.ev_label;
  Alcotest.(check string) "popped label" "op" tr.(1).Comm.ev_label;
  Alcotest.(check bool) "round event" true (tr.(0).Comm.ev_op = Comm.Round);
  Alcotest.(check int) "bits recorded" 7 tr.(0).Comm.ev_bits;
  (* ring overwrite: capacity 4, push 6 more *)
  for _ = 1 to 6 do
    Comm.round c ~bits:1 ~messages:1
  done;
  Alcotest.(check int) "dropped = recorded - capacity" 4
    (Comm.dropped_events c);
  Alcotest.(check int) "transcript truncated to capacity" 4
    (Array.length (Comm.transcript c));
  Comm.stop_recording c;
  Comm.round c ~bits:1 ~messages:1;
  Alcotest.(check int) "stop halts recording" 0 (Comm.recorded_events c)

let test_transcript_diff () =
  let ev op r b m =
    {
      Comm.ev_op = op;
      ev_label = "";
      ev_rounds = r;
      ev_bits = b;
      ev_messages = m;
    }
  in
  let a = [| ev Comm.Round 1 8 2; ev Comm.Traffic 0 4 1 |] in
  Alcotest.(check bool) "equal transcripts" true (Comm.transcript_diff a a = None);
  let b = [| ev Comm.Round 1 8 2; ev Comm.Traffic 0 5 1 |] in
  (match Comm.transcript_diff a b with
  | Some (1, Some _, Some _) -> ()
  | _ -> Alcotest.fail "diff should localize to event 1");
  match Comm.transcript_diff a [| ev Comm.Round 1 8 2 |] with
  | Some (1, Some _, None) -> ()
  | _ -> Alcotest.fail "length mismatch should report early end"

(* ---------------- cost model vs metering ---------------- *)

let strip_labels =
  Array.map (fun (e : Comm.event) -> { e with Comm.ev_label = "" })

let record kind f =
  let ctx = Ctx.create ~seed:42 kind in
  Comm.start_recording ctx.Ctx.comm;
  f ctx;
  strip_labels (Comm.transcript ctx.Ctx.comm)

let check_predicted name kind predicted measured =
  Alcotest.(check (array event_t))
    (Printf.sprintf "%s [%s]" name (Ctx.kind_label kind))
    predicted (record kind measured)

let test_costmodel_primitives () =
  List.iter
    (fun kind ->
      List.iter
        (fun (w, n) ->
          let data = Array.init n (fun i -> (i * 7) land ((1 lsl w) - 1)) in
          check_predicted
            (Printf.sprintf "open w=%d n=%d" w n)
            kind
            (Costmodel.open_events kind ~w ~n)
            (fun ctx -> ignore (Mpc.open_ ~width:w ctx (Mpc.share_b ctx data)));
          check_predicted
            (Printf.sprintf "band w=%d n=%d" w n)
            kind
            (Costmodel.mul_events kind ~w ~n)
            (fun ctx ->
              let x = Mpc.share_b ctx data in
              ignore (Mpc.band ~width:w ctx x x));
          check_predicted
            (Printf.sprintf "eq w=%d n=%d" w n)
            kind
            (Costmodel.eq_events kind ~w ~n)
            (fun ctx ->
              let x = Mpc.share_b ctx data in
              ignore (Orq_circuits.Compare.eq ctx ~w x x));
          check_predicted
            (Printf.sprintf "lt w=%d n=%d" w n)
            kind
            (Costmodel.lt_events kind ~w ~n)
            (fun ctx ->
              let x = Mpc.share_b ctx data in
              ignore (Orq_circuits.Compare.lt ctx ~w x x));
          check_predicted
            (Printf.sprintf "shuffle w=%d n=%d" w n)
            kind
            (Costmodel.shuffle_events kind ~w ~n)
            (fun ctx ->
              ignore
                (Orq_shuffle.Permops.shuffle ~width:w ctx (Mpc.share_b ctx data))))
        [ (1, 16); (8, 33); (24, 100); (40, 7) ])
    Ctx.all_kinds

let test_costmodel_arith_mul () =
  List.iter
    (fun kind ->
      let n = 50 in
      check_predicted "arith mul" kind
        (Costmodel.mul_events kind ~w:64 ~n)
        (fun ctx ->
          let x = Mpc.share_a ctx (Array.init n (fun i -> i)) in
          ignore (Mpc.mul ctx x x)))
    Ctx.all_kinds

(* ---------------- certifier ---------------- *)

let test_certify_queries () =
  (* one representative TPC-H query + one prior-work query under all three
     protocols at a small scale: predicted (shape twin) == measured *)
  let certs =
    Certify.run_suite ~sf:0.0002 ~other_n:120
      ~names:[ "Q6"; "Aspirin" ] ()
  in
  Alcotest.(check int) "2 queries x 3 protocols" 6 (List.length certs);
  List.iter
    (fun (c : Certify.cert) ->
      Alcotest.(check bool)
        (Printf.sprintf "%s/%s certified" c.Certify.c_query c.Certify.c_protocol)
        true c.Certify.c_ok;
      Alcotest.(check bool)
        (Printf.sprintf "%s/%s validated" c.Certify.c_query c.Certify.c_protocol)
        true c.Certify.c_validated;
      Alcotest.(check bool)
        (Printf.sprintf "%s/%s nonempty" c.Certify.c_query c.Certify.c_protocol)
        true (c.Certify.c_events > 0))
    certs

let test_certify_catches_shape_leak () =
  (* sanity that the certifier can fail: two runs whose traces differ in
     payload size (as if a branch skipped work) must not certify *)
  let c =
    Certify.certify_one ~query:"seeded-leak" ~kind:Ctx.Sh_hm
      ~measured:(fun ctx ->
        let x = Mpc.share_b ctx (Array.init 8 (fun i -> i)) in
        ignore (Mpc.band ctx x x);
        true)
      ~predicted:(fun ctx ->
        let x = Mpc.share_b ctx (Array.init 9 (fun i -> i)) in
        ignore (Mpc.band ctx x x))
  in
  Alcotest.(check bool) "shape difference rejected" false c.Certify.c_ok;
  Alcotest.(check bool) "divergence localized" true
    (String.length c.Certify.c_detail > 0)

let test_twin_preserves_shape_only () =
  let p =
    Orq_plaintext.Ptable.create [ "a"; "b" ] [ [ 10; 20 ]; [ 30; 40 ] ]
  in
  let t = Certify.twin_ptable p in
  Alcotest.(check (list string)) "schema kept" p.Orq_plaintext.Ptable.schema
    t.Orq_plaintext.Ptable.schema;
  Alcotest.(check int) "rows kept" 2 (Orq_plaintext.Ptable.nrows t);
  Alcotest.(check bool) "values replaced" true
    (p.Orq_plaintext.Ptable.rows <> t.Orq_plaintext.Ptable.rows)

let suite =
  [
    Alcotest.test_case "lint flags seeded violations" `Quick
      test_lint_flags_seeded_violations;
    Alcotest.test_case "lint passes clean code" `Quick
      test_lint_clean_code_passes;
    Alcotest.test_case "allowlist entries are justified" `Quick
      test_lint_audited_tree_is_registered;
    Alcotest.test_case "recorder ring + label stack" `Quick
      test_recorder_ring_and_labels;
    Alcotest.test_case "transcript diff localizes" `Quick test_transcript_diff;
    Alcotest.test_case "cost model: boolean primitives" `Quick
      test_costmodel_primitives;
    Alcotest.test_case "cost model: arithmetic mul" `Quick
      test_costmodel_arith_mul;
    Alcotest.test_case "certifier: live queries" `Slow test_certify_queries;
    Alcotest.test_case "certifier: rejects shape leak" `Quick
      test_certify_catches_shape_leak;
    Alcotest.test_case "shape twin" `Quick test_twin_preserves_shape_only;
  ]

let () = Alcotest.run "orq_analysis" [ ("analysis", suite) ]
