(* Tests for the query service subsystem: wire-protocol round-trips, the
   fair prioritized job queue, SQL normalization, and the live server over
   Unix-domain sockets — concurrent clients with independent results,
   admission-control rejection, plan-cache hit ≡ cold execution,
   single-flight coalescing, worker-count-independent tallies, per-group
   fairness, graceful shutdown, client receive timeouts, and survival of
   mid-query client disconnects and malformed frames. *)

open Orq_proto
open Orq_core
open Orq_workloads
module Wire = Orq_net.Wire
module Service = Orq_service.Service
module Client = Orq_service.Client
module Jobqueue = Orq_service.Jobqueue
module Plan_cache = Orq_service.Plan_cache

let rows_t = Alcotest.(list (list int))

(* ------------------------------------------------------------------ *)
(* Wire protocol                                                       *)
(* ------------------------------------------------------------------ *)

let roundtrip_response (r : Wire.response) : Wire.response =
  let a, b = Unix.socketpair Unix.PF_UNIX Unix.SOCK_STREAM 0 in
  Fun.protect ~finally:(fun () ->
      Unix.close a;
      Unix.close b)
  @@ fun () ->
  Wire.send_response a r;
  Option.get (Wire.recv_response b)

let roundtrip_request (r : Wire.request) : Wire.request =
  let a, b = Unix.socketpair Unix.PF_UNIX Unix.SOCK_STREAM 0 in
  Fun.protect ~finally:(fun () ->
      Unix.close a;
      Unix.close b)
  @@ fun () ->
  Wire.send_request a r;
  Option.get (Wire.recv_request b)

let test_wire_requests () =
  List.iter
    (fun r -> assert (roundtrip_request r = r))
    [
      Wire.Hello
        {
          h_version = Wire.protocol_version;
          h_proto = "sh-dm";
          h_client = "";
        };
      Wire.Hello
        { h_version = 1; h_proto = "mal-hm"; h_client = "analytics-team" };
      Wire.Query "SELECT x FROM t";
      Wire.Query_p { q_sql = "SELECT y FROM u"; q_prio = 0 };
      Wire.Query_p { q_sql = "SELECT z FROM v"; q_prio = 2 };
      Wire.Ping;
      Wire.Stats_req;
      Wire.Set_workers 8;
      Wire.Net_stats_req;
    ]

let test_wire_responses () =
  let result =
    Wire.Result
      {
        r_cols = [ "a"; "b" ];
        r_rows = [ [ 1; -7 ]; [ max_int; min_int + 1 ] ];
        r_truncated = true;
        r_fallbacks = 2;
        r_cache_hit = false;
        r_tally = { Orq_net.Comm.t_rounds = 3; t_bits = 12345; t_messages = 9 };
        r_pre = Orq_net.Comm.zero_tally;
        (* >= 2.0 exercises the full-64-bit float path (sign-bit bug) *)
        r_lan_s = 3.875;
        r_wan_s = 0.0125;
        r_peak_bytes = 123_456_789;
        r_spills = 11;
      }
  in
  List.iter
    (fun r -> assert (roundtrip_response r = r))
    [
      Wire.Hello_ok { session = 7; proto = "SH-HM" };
      result;
      Wire.Error_r { code = Wire.Busy; msg = "queue full" };
      Wire.Pong;
      Wire.Stats_r
        {
          s_sessions = 1;
          s_workers = 8;
          s_jobs = 2;
          s_rejected = 3;
          s_cache_hits = 4;
          s_cache_misses = 5;
          s_coalesced = 6;
          s_queue_depth = 7;
          s_in_flight = 9;
          s_wait_p50_ms = 0.5;
          s_wait_p95_ms = 12.25;
          s_exec_p50_ms = 3.875;
          s_exec_p95_ms = 100.0625;
          s_mem_live_bytes = 10_485_760;
          s_mem_peak_bytes = 1 lsl 40;
          s_mem_spilled_bytes = 987_654_321;
          s_rss_peak_kb = 204_800;
        };
    ]

let test_wire_rejects_oversized () =
  let a, b = Unix.socketpair Unix.PF_UNIX Unix.SOCK_STREAM 0 in
  Fun.protect ~finally:(fun () ->
      Unix.close a;
      Unix.close b)
  @@ fun () ->
  (* a hostile length prefix larger than max_frame must raise before any
     allocation of that size *)
  let hdr = Bytes.of_string "\xff\xff\xff\xff" in
  assert (Unix.write a hdr 0 4 = 4);
  Unix.shutdown a Unix.SHUTDOWN_SEND;
  Alcotest.check_raises "oversized frame"
    (Wire.Wire_error
       (Printf.sprintf "frame length %d exceeds max_frame" 0xffffffff))
    (fun () -> ignore (Wire.recv_request b))

(* ------------------------------------------------------------------ *)
(* Job queue and plan cache                                            *)
(* ------------------------------------------------------------------ *)

let test_jobqueue_admission () =
  let q = Jobqueue.create ~capacity:2 in
  assert (Jobqueue.try_push q ~group:1 ~prio:Jobqueue.Normal 1);
  assert (Jobqueue.try_push q ~group:1 ~prio:Jobqueue.Normal 2);
  Alcotest.(check bool)
    "full" false
    (Jobqueue.try_push q ~group:1 ~prio:Jobqueue.Normal 3);
  (* blocking admission times out while the queue stays full *)
  Alcotest.(check bool)
    "push times out" false
    (Jobqueue.push q ~group:1 ~prio:Jobqueue.Normal ~timeout_s:0.05 3);
  (* popping moves a job to 'running': still counted in-flight *)
  assert (Jobqueue.pop q = Some 1);
  Alcotest.(check bool)
    "still full" false
    (Jobqueue.try_push q ~group:1 ~prio:Jobqueue.Normal 3);
  Jobqueue.finish q;
  Alcotest.(check bool)
    "slot freed" true
    (Jobqueue.try_push q ~group:1 ~prio:Jobqueue.Normal 3);
  Jobqueue.close q;
  Alcotest.(check bool)
    "closed" false
    (Jobqueue.try_push q ~group:1 ~prio:Jobqueue.Normal 4);
  (* close drains the queue before returning None *)
  assert (Jobqueue.pop q = Some 2);
  assert (Jobqueue.pop q = Some 3);
  assert (Jobqueue.pop q = None)

let test_jobqueue_priorities () =
  let q = Jobqueue.create ~capacity:10 in
  assert (Jobqueue.try_push q ~group:1 ~prio:Jobqueue.Low "low");
  assert (Jobqueue.try_push q ~group:1 ~prio:Jobqueue.Normal "normal");
  assert (Jobqueue.try_push q ~group:1 ~prio:Jobqueue.High "high");
  Alcotest.(check (option string)) "high first" (Some "high") (Jobqueue.pop q);
  Alcotest.(check (option string)) "then normal" (Some "normal") (Jobqueue.pop q);
  Alcotest.(check (option string)) "then low" (Some "low") (Jobqueue.pop q)

let test_jobqueue_group_fairness () =
  let q = Jobqueue.create ~capacity:10 in
  (* group 1 floods three jobs before group 2's single job arrives *)
  List.iter
    (fun x -> assert (Jobqueue.try_push q ~group:1 ~prio:Jobqueue.Normal x))
    [ "a1"; "a2"; "a3" ];
  assert (Jobqueue.try_push q ~group:2 ~prio:Jobqueue.Normal "b1");
  Alcotest.(check (option string)) "g1 head" (Some "a1") (Jobqueue.pop q);
  (* round-robin: the other group is served before the flood's backlog *)
  Alcotest.(check (option string)) "g2 next" (Some "b1") (Jobqueue.pop q);
  Alcotest.(check (option string)) "back to g1" (Some "a2") (Jobqueue.pop q);
  Alcotest.(check (option string)) "g1 tail" (Some "a3") (Jobqueue.pop q)

let test_normalize () =
  let n = Plan_cache.normalize in
  Alcotest.(check string)
    "whitespace and keyword case"
    (n "SELECT a, COUNT(*) AS n FROM t GROUP BY a")
    (n "select   a ,\n count( * ) as n\tfrom t group by a");
  Alcotest.(check bool)
    "different queries stay different" false
    (n "SELECT a FROM t" = n "SELECT b FROM t")

(* ------------------------------------------------------------------ *)
(* Live server                                                         *)
(* ------------------------------------------------------------------ *)

let counter = ref 0

let with_server ?(workers = 1) ?(max_jobs = 4) ?(max_rows = 10_000)
    ?(cache = 64) ?(admit_s = 2.0) ?(drain_s = 5.0) ?job_hook f =
  incr counter;
  let socket_path =
    Filename.concat
      (Filename.get_temp_dir_name ())
      (Printf.sprintf "orq-test-%d-%d.sock" (Unix.getpid ()) !counter)
  in
  let cfg =
    {
      Service.socket_path;
      sf = 0.001;
      seed = 42;
      workers;
      max_jobs;
      max_rows;
      cache_capacity = cache;
      admit_timeout_s = admit_s;
      drain_timeout_s = drain_s;
      pace = None;
      prewarm = [];
      verbose = false;
      job_hook;
    }
  in
  let t = Service.start cfg in
  Fun.protect ~finally:(fun () -> Service.stop t) (fun () -> f t socket_path)

(* Reference results straight through the planner on the same catalog
   (same seed and scale factor as the server). *)
let expected_rows sql =
  let ctx = Ctx.create ~seed:42 Ctx.Sh_hm in
  let db = Tpch_gen.share ctx (Tpch_gen.generate ~seed:42 0.001) in
  let t, cols, _ = Orq_planner.Sql.run (Tpch_gen.catalog db) sql in
  Table.valid_rows_sorted t cols

let query_ok c sql =
  match Client.query c sql with
  | Ok r -> r
  | Error (code, msg) ->
      Alcotest.failf "query failed (%s): %s" (Wire.err_label code) msg

let test_concurrent_clients () =
  let cases =
    [
      "SELECT o_orderpriority, COUNT(*) AS n FROM orders GROUP BY \
       o_orderpriority";
      "SELECT c_mktsegment, COUNT(*) AS n FROM customer GROUP BY \
       c_mktsegment";
      "SELECT n_regionkey, COUNT(*) AS n FROM nation GROUP BY n_regionkey";
    ]
  in
  let expected = List.map expected_rows cases in
  with_server ~workers:2 @@ fun _ socket ->
  let results = Array.make (List.length cases) [] in
  let threads =
    List.mapi
      (fun i sql ->
        Thread.create
          (fun () ->
            let c = Client.connect socket in
            Fun.protect ~finally:(fun () -> Client.close c) @@ fun () ->
            (match Client.set_protocol c "sh-hm" with
            | Ok _ -> ()
            | Error m -> Alcotest.failf "hello: %s" m);
            results.(i) <- (query_ok c sql).Wire.r_rows)
          ())
      cases
  in
  List.iter Thread.join threads;
  List.iteri
    (fun i exp ->
      Alcotest.(check rows_t)
        (Printf.sprintf "client %d rows" i)
        exp results.(i))
    expected

let test_per_session_protocol () =
  with_server @@ fun _ socket ->
  let sql = "SELECT n_regionkey, COUNT(*) AS n FROM nation GROUP BY n_regionkey" in
  let run proto =
    let c = Client.connect socket in
    Fun.protect ~finally:(fun () -> Client.close c) @@ fun () ->
    (match Client.set_protocol c proto with
    | Ok _ -> ()
    | Error m -> Alcotest.failf "hello: %s" m);
    query_ok c sql
  in
  let r2 = run "sh-dm" and r3 = run "sh-hm" and r4 = run "mal-hm" in
  Alcotest.(check rows_t) "2pc = 3pc rows" r2.Wire.r_rows r3.Wire.r_rows;
  Alcotest.(check rows_t) "3pc = 4pc rows" r3.Wire.r_rows r4.Wire.r_rows;
  (* different protocols really ran: their traffic differs *)
  Alcotest.(check bool)
    "2pc and 4pc tallies differ" false
    (r2.Wire.r_tally = r4.Wire.r_tally)

let test_admission_control () =
  with_server ~max_jobs:1 ~cache:0 ~admit_s:0.05
    ~job_hook:(fun () -> Thread.delay 0.4)
  @@ fun _ socket ->
  let sql = "SELECT n_regionkey, COUNT(*) AS n FROM nation GROUP BY n_regionkey" in
  let slow_result = ref None in
  let slow =
    Thread.create
      (fun () ->
        let c = Client.connect socket in
        Fun.protect ~finally:(fun () -> Client.close c) @@ fun () ->
        slow_result := Some (Client.query c sql))
      ()
  in
  Thread.delay 0.15;
  (* the single in-flight slot is taken: admission control must refuse
     once the (shortened) admit timeout expires *)
  let c = Client.connect socket in
  (match Client.query c sql with
  | Error (Wire.Busy, msg) ->
      (* graceful backpressure: the refusal reports queue numbers *)
      Alcotest.(check bool)
        "busy message carries depth info" true
        (String.length msg > 0
        && String.index_opt msg ':' <> None)
  | Ok _ -> Alcotest.fail "expected busy rejection, got a result"
  | Error (code, msg) ->
      Alcotest.failf "expected busy, got %s: %s" (Wire.err_label code) msg);
  Client.close c;
  Thread.join slow;
  (match !slow_result with
  | Some (Ok _) -> ()
  | _ -> Alcotest.fail "admitted query should still succeed");
  (* and the server accepts work again afterwards *)
  let c = Client.connect socket in
  Fun.protect ~finally:(fun () -> Client.close c) @@ fun () ->
  ignore (query_ok c sql)

let test_plan_cache_hit_equals_cold () =
  with_server @@ fun _ socket ->
  let c = Client.connect socket in
  Fun.protect ~finally:(fun () -> Client.close c) @@ fun () ->
  let cold =
    query_ok c
      "SELECT o_orderpriority, COUNT(*) AS n FROM orders GROUP BY \
       o_orderpriority"
  in
  Alcotest.(check bool) "cold miss" false cold.Wire.r_cache_hit;
  (* same query, different whitespace and keyword case: normalized key *)
  let hit =
    query_ok c
      "select   o_orderpriority, count(*) as n\n\
       from orders group by o_orderpriority"
  in
  Alcotest.(check bool) "hit" true hit.Wire.r_cache_hit;
  Alcotest.(check rows_t) "identical table" cold.Wire.r_rows hit.Wire.r_rows;
  Alcotest.(check (list string)) "identical cols" cold.Wire.r_cols hit.Wire.r_cols;
  Alcotest.(check bool)
    "identical online tally" true
    (cold.Wire.r_tally = hit.Wire.r_tally);
  Alcotest.(check bool)
    "identical preprocessing tally" true
    (cold.Wire.r_pre = hit.Wire.r_pre);
  Alcotest.(check bool)
    "identical netsim estimates" true
    (cold.Wire.r_lan_s = hit.Wire.r_lan_s
    && cold.Wire.r_wan_s = hit.Wire.r_wan_s)

let test_cache_disabled () =
  with_server ~cache:0 @@ fun _ socket ->
  let c = Client.connect socket in
  Fun.protect ~finally:(fun () -> Client.close c) @@ fun () ->
  let sql = "SELECT n_regionkey, COUNT(*) AS n FROM nation GROUP BY n_regionkey" in
  let a = query_ok c sql in
  let b = query_ok c sql in
  Alcotest.(check bool) "no hit" false (a.Wire.r_cache_hit || b.Wire.r_cache_hit);
  Alcotest.(check rows_t) "still deterministic" a.Wire.r_rows b.Wire.r_rows;
  (* per-query reseeding: re-executions are byte-identical, tallies too *)
  Alcotest.(check bool)
    "identical tallies on re-execution" true
    (a.Wire.r_tally = b.Wire.r_tally && a.Wire.r_pre = b.Wire.r_pre)

(* Satellite 3a: per-query tallies are a pure function of (seed, protocol,
   query) — a server with 8 workers under heavy concurrency produces
   byte-identical responses to a serial 1-worker server. *)
let test_tallies_workers_1_vs_8 () =
  let cases =
    [
      ("sh-dm",
       "SELECT n_regionkey, COUNT(*) AS n FROM nation GROUP BY n_regionkey");
      ("sh-hm",
       "SELECT o_orderpriority, COUNT(*) AS n FROM orders GROUP BY \
        o_orderpriority");
      ("mal-hm",
       "SELECT c_mktsegment, COUNT(*) AS n FROM customer GROUP BY \
        c_mktsegment");
      ("sh-hm",
       "SELECT n_regionkey, COUNT(*) AS n FROM nation GROUP BY n_regionkey");
    ]
  in
  let run_all ~workers =
    with_server ~workers ~max_jobs:16 ~cache:0 @@ fun _ socket ->
    let out = Array.make (List.length cases) None in
    let threads =
      List.mapi
        (fun i (proto, sql) ->
          Thread.create
            (fun () ->
              let c = Client.connect socket in
              Fun.protect ~finally:(fun () -> Client.close c) @@ fun () ->
              (match Client.set_protocol c proto with
              | Ok _ -> ()
              | Error m -> Alcotest.failf "hello: %s" m);
              out.(i) <- Some (query_ok c sql))
            ())
        cases
    in
    List.iter Thread.join threads;
    Array.to_list out |> List.map Option.get
  in
  let serial = run_all ~workers:1 in
  let pooled = run_all ~workers:8 in
  List.iteri
    (fun i ((proto, _), (a, b)) ->
      Alcotest.(check rows_t)
        (Printf.sprintf "case %d (%s) rows" i proto)
        a.Wire.r_rows b.Wire.r_rows;
      Alcotest.(check bool)
        (Printf.sprintf "case %d (%s) full response byte-identical" i proto)
        true (a = b))
    (List.combine cases (List.combine serial pooled))

(* Satellite 3b: M concurrent identical cold queries fire exactly one
   execution; the rest replay the leader's byte-identical response. *)
let test_single_flight () =
  let executions = Atomic.make 0 in
  with_server ~workers:4 ~max_jobs:16
    ~job_hook:(fun () ->
      Atomic.incr executions;
      (* hold the flight open long enough for every follower to join *)
      Thread.delay 0.25)
  @@ fun _ socket ->
  let sql =
    "SELECT o_orderpriority, COUNT(*) AS n FROM orders GROUP BY \
     o_orderpriority"
  in
  let m = 6 in
  let out = Array.make m None in
  let threads =
    List.init m (fun i ->
        Thread.create
          (fun () ->
            let c = Client.connect socket in
            Fun.protect ~finally:(fun () -> Client.close c) @@ fun () ->
            out.(i) <- Some (query_ok c sql))
          ())
  in
  List.iter Thread.join threads;
  Alcotest.(check int) "exactly one execution" 1 (Atomic.get executions);
  let first = Option.get out.(0) in
  Array.iteri
    (fun i r ->
      let r = Option.get r in
      Alcotest.(check rows_t)
        (Printf.sprintf "client %d rows" i)
        first.Wire.r_rows r.Wire.r_rows;
      Alcotest.(check bool)
        (Printf.sprintf "client %d tally identical" i)
        true
        (r.Wire.r_tally = first.Wire.r_tally))
    out

(* Single-flight under repeated racing: every round, N threads race the
   same *cold* query (a fresh WHERE literal per round keeps the cache
   out of play), and each round must coalesce to exactly one execution
   with identical replies. This hammers the flight-ticket create/park/
   resolve handoff in Plan_cache — the exact path the lock-order
   migration restructured — round after round rather than once. *)
let test_single_flight_race () =
  let executions = Atomic.make 0 in
  with_server ~workers:4 ~max_jobs:16
    ~job_hook:(fun () ->
      Atomic.incr executions;
      Thread.delay 0.12)
  @@ fun _ socket ->
  let n = 6 and rounds = 5 in
  for round = 1 to rounds do
    let sql =
      Printf.sprintf
        "SELECT o_orderpriority, COUNT(*) AS n FROM orders WHERE o_orderkey \
         < %d GROUP BY o_orderpriority"
        (100 + round)
    in
    let before = Atomic.get executions in
    let out = Array.make n None in
    let threads =
      List.init n (fun i ->
          Thread.create
            (fun () ->
              let c = Client.connect socket in
              Fun.protect ~finally:(fun () -> Client.close c) @@ fun () ->
              out.(i) <- Some (query_ok c sql))
            ())
    in
    List.iter Thread.join threads;
    Alcotest.(check int)
      (Printf.sprintf "round %d: exactly one execution" round)
      1
      (Atomic.get executions - before);
    let first = Option.get out.(0) in
    Array.iteri
      (fun i r ->
        let r = Option.get r in
        Alcotest.(check rows_t)
          (Printf.sprintf "round %d client %d rows" round i)
          first.Wire.r_rows r.Wire.r_rows;
        Alcotest.(check bool)
          (Printf.sprintf "round %d client %d tally identical" round i)
          true
          (r.Wire.r_tally = first.Wire.r_tally))
      out
  done;
  Alcotest.(check int) "total executions = rounds" rounds
    (Atomic.get executions)

(* Satellite 3c: one session's flood cannot starve another session beyond
   a bounded delay — the solo client finishes while the flood still has
   backlog. *)
let test_fairness_under_flood () =
  with_server ~workers:1 ~max_jobs:8 ~cache:0
    ~job_hook:(fun () -> Thread.delay 0.1)
  @@ fun _ socket ->
  let sql = "SELECT n_regionkey, COUNT(*) AS n FROM nation GROUP BY n_regionkey" in
  let flood_done = ref false in
  let flood_threads =
    List.init 4 (fun _ ->
        Thread.create
          (fun () ->
            let c = Client.connect socket in
            Fun.protect ~finally:(fun () -> Client.close c) @@ fun () ->
            (match Client.set_protocol ~client:"flood" c "sh-hm" with
            | Ok _ -> ()
            | Error m -> Alcotest.failf "hello: %s" m);
            for _ = 1 to 3 do
              ignore (query_ok c sql)
            done)
          ())
  in
  let watcher =
    Thread.create
      (fun () ->
        List.iter Thread.join flood_threads;
        flood_done := true)
      ()
  in
  (* let the flood fill the queue first *)
  Thread.delay 0.25;
  let c = Client.connect socket in
  Fun.protect ~finally:(fun () -> Client.close c) @@ fun () ->
  (match Client.set_protocol ~client:"solo" c "sh-hm" with
  | Ok _ -> ()
  | Error m -> Alcotest.failf "hello: %s" m);
  ignore (query_ok c sql);
  (* round-robin across client groups: the solo query was served while
     the flood (12 x 0.1 s of work on one worker) was still draining *)
  Alcotest.(check bool) "flood still has backlog" false !flood_done;
  Thread.join watcher

(* Satellite 1: graceful stop — the running query completes and is
   delivered; the queued-but-never-started one gets an explicit shutdown
   error frame, not a dropped connection. *)
let test_graceful_stop () =
  with_server ~workers:1 ~max_jobs:4 ~cache:0 ~drain_s:0.01
    ~job_hook:(fun () -> Thread.delay 0.5)
  @@ fun t socket ->
  let sql = "SELECT n_regionkey, COUNT(*) AS n FROM nation GROUP BY n_regionkey" in
  let r_running = ref None and r_queued = ref None in
  let spawn slot =
    Thread.create
      (fun () ->
        let c = Client.connect socket in
        Fun.protect ~finally:(fun () -> Client.close c) @@ fun () ->
        slot := Some (Client.query c sql))
      ()
  in
  let a = spawn r_running in
  Thread.delay 0.1;
  (* a is executing (hook sleeps 0.5 s); b sits queued behind it *)
  let b = spawn r_queued in
  Thread.delay 0.1;
  Service.stop t;
  Thread.join a;
  Thread.join b;
  (match !r_running with
  | Some (Ok _) -> ()
  | _ -> Alcotest.fail "in-flight query should complete during drain");
  match !r_queued with
  | Some (Error (Wire.Busy, msg)) ->
      Alcotest.(check string) "shutdown frame" "server shutting down" msg
  | Some (Ok _) ->
      (* the worker may have started it before the queue closed *)
      ()
  | _ -> Alcotest.fail "queued query should get a proper shutdown frame"

(* Satellite 2: a client receive timeout fires instead of hanging on a
   stalled server. *)
let test_client_timeout () =
  with_server ~cache:0 ~job_hook:(fun () -> Thread.delay 1.0)
  @@ fun _ socket ->
  let c = Client.connect ~timeout_ms:100 socket in
  Fun.protect ~finally:(fun () -> Client.close c) @@ fun () ->
  match
    Client.query c
      "SELECT n_regionkey, COUNT(*) AS n FROM nation GROUP BY n_regionkey"
  with
  | exception Client.Service_error msg ->
      Alcotest.(check bool)
        "timeout message" true
        (String.length msg > 0)
  | _ -> Alcotest.fail "expected a receive-timeout Service_error"

let test_set_workers_live () =
  with_server ~workers:1 @@ fun _ socket ->
  let c = Client.connect socket in
  Fun.protect ~finally:(fun () -> Client.close c) @@ fun () ->
  let sql = "SELECT n_regionkey, COUNT(*) AS n FROM nation GROUP BY n_regionkey" in
  ignore (query_ok c sql);
  let s = Client.set_workers c 4 in
  Alcotest.(check int) "grown" 4 s.Wire.s_workers;
  ignore (query_ok c sql);
  let s = Client.set_workers c 1 in
  Alcotest.(check int) "shrunk" 1 s.Wire.s_workers;
  (* still serving after both resizes *)
  ignore (query_ok c sql)

let test_max_rows_truncation () =
  with_server ~max_rows:3 @@ fun _ socket ->
  let c = Client.connect socket in
  Fun.protect ~finally:(fun () -> Client.close c) @@ fun () ->
  let r =
    query_ok c
      "SELECT o_orderpriority, COUNT(*) AS n FROM orders GROUP BY \
       o_orderpriority"
  in
  Alcotest.(check bool) "truncated" true r.Wire.r_truncated;
  Alcotest.(check int) "3 rows" 3 (List.length r.Wire.r_rows)

let test_sql_error_frame () =
  with_server @@ fun _ socket ->
  let c = Client.connect socket in
  Fun.protect ~finally:(fun () -> Client.close c) @@ fun () ->
  (match Client.query c "SELECT x FROM nosuch" with
  | Error (Wire.Bad_request, msg) ->
      Alcotest.(check string) "clean error" "unknown table: nosuch" msg
  | _ -> Alcotest.fail "expected bad-request");
  (* the session survives the error *)
  ignore
    (query_ok c "SELECT n_regionkey, COUNT(*) AS n FROM nation GROUP BY n_regionkey")

let test_survives_disconnect_mid_query () =
  with_server ~cache:0 @@ fun _ socket ->
  (* fire a query and slam the connection before the reply *)
  let fd = Unix.socket Unix.PF_UNIX Unix.SOCK_STREAM 0 in
  Unix.connect fd (Unix.ADDR_UNIX socket);
  Wire.send_request fd
    (Wire.Query
       "SELECT o_orderpriority, COUNT(*) AS n FROM orders GROUP BY \
        o_orderpriority");
  Unix.close fd;
  Thread.delay 0.05;
  (* the server must still be alive and serving *)
  let c = Client.connect socket in
  Fun.protect ~finally:(fun () -> Client.close c) @@ fun () ->
  ignore
    (query_ok c "SELECT n_regionkey, COUNT(*) AS n FROM nation GROUP BY n_regionkey");
  let s = Client.stats c in
  Alcotest.(check bool) "jobs ran" true (s.Wire.s_jobs >= 1)

let test_survives_malformed_frame () =
  with_server @@ fun _ socket ->
  (* hostile length prefix *)
  let fd = Unix.socket Unix.PF_UNIX Unix.SOCK_STREAM 0 in
  Unix.connect fd (Unix.ADDR_UNIX socket);
  assert (Unix.write fd (Bytes.of_string "\xff\xff\xff\xff") 0 4 = 4);
  (match Wire.recv_response fd with
  | Some (Wire.Error_r { code = Wire.Bad_request; _ }) | None -> ()
  | _ -> Alcotest.fail "expected error frame or close");
  Unix.close fd;
  (* unknown tag in a well-sized frame *)
  let fd = Unix.socket Unix.PF_UNIX Unix.SOCK_STREAM 0 in
  Unix.connect fd (Unix.ADDR_UNIX socket);
  assert (Unix.write fd (Bytes.of_string "\x00\x00\x00\x01\x7f") 0 5 = 5);
  (match Wire.recv_response fd with
  | Some (Wire.Error_r { code = Wire.Bad_request; _ }) | None -> ()
  | _ -> Alcotest.fail "expected error frame or close");
  Unix.close fd;
  (* fresh sessions still work *)
  let c = Client.connect socket in
  Fun.protect ~finally:(fun () -> Client.close c) @@ fun () ->
  assert (Client.ping c);
  ignore
    (query_ok c "SELECT n_regionkey, COUNT(*) AS n FROM nation GROUP BY n_regionkey")

let test_stats () =
  with_server @@ fun _ socket ->
  let c = Client.connect socket in
  Fun.protect ~finally:(fun () -> Client.close c) @@ fun () ->
  let sql = "SELECT n_regionkey, COUNT(*) AS n FROM nation GROUP BY n_regionkey" in
  ignore (query_ok c sql);
  ignore (query_ok c sql);
  let s = Client.stats c in
  (* the repeat was a cache hit served in the session thread: one job *)
  Alcotest.(check int) "jobs" 1 s.Wire.s_jobs;
  Alcotest.(check bool) "one hit" true (s.Wire.s_cache_hits >= 1);
  Alcotest.(check int) "sessions" 1 s.Wire.s_sessions;
  Alcotest.(check int) "workers" 1 s.Wire.s_workers;
  Alcotest.(check bool) "exec p95 measured" true (s.Wire.s_exec_p95_ms > 0.)

let () =
  Alcotest.run "service"
    [
      ( "wire",
        [
          Alcotest.test_case "request round-trips" `Quick test_wire_requests;
          Alcotest.test_case "response round-trips" `Quick test_wire_responses;
          Alcotest.test_case "oversized frame rejected" `Quick
            test_wire_rejects_oversized;
        ] );
      ( "queue+cache",
        [
          Alcotest.test_case "bounded admission" `Quick test_jobqueue_admission;
          Alcotest.test_case "priority classes" `Quick test_jobqueue_priorities;
          Alcotest.test_case "per-group round-robin" `Quick
            test_jobqueue_group_fairness;
          Alcotest.test_case "sql normalization" `Quick test_normalize;
        ] );
      ( "server",
        [
          Alcotest.test_case "concurrent clients" `Quick
            test_concurrent_clients;
          Alcotest.test_case "per-session protocol" `Quick
            test_per_session_protocol;
          Alcotest.test_case "admission control" `Quick test_admission_control;
          Alcotest.test_case "plan-cache hit = cold" `Quick
            test_plan_cache_hit_equals_cold;
          Alcotest.test_case "cache disabled" `Quick test_cache_disabled;
          Alcotest.test_case "tallies workers 1 = 8" `Quick
            test_tallies_workers_1_vs_8;
          Alcotest.test_case "single-flight coalescing" `Quick
            test_single_flight;
          Alcotest.test_case "single-flight race, repeated rounds" `Quick
            test_single_flight_race;
          Alcotest.test_case "fairness under flood" `Quick
            test_fairness_under_flood;
          Alcotest.test_case "graceful stop" `Quick test_graceful_stop;
          Alcotest.test_case "client timeout" `Quick test_client_timeout;
          Alcotest.test_case "live worker resize" `Quick test_set_workers_live;
          Alcotest.test_case "max-rows truncation" `Quick
            test_max_rows_truncation;
          Alcotest.test_case "sql error frame" `Quick test_sql_error_frame;
          Alcotest.test_case "survives disconnect" `Quick
            test_survives_disconnect_mid_query;
          Alcotest.test_case "survives malformed frame" `Quick
            test_survives_malformed_frame;
          Alcotest.test_case "stats" `Quick test_stats;
        ] );
    ]
