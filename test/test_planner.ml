(* Tests for the automatic query planner (the paper's named future work):
   schema/candidate-key inference, filter pushdown, join orientation,
   automatic §3.6 pre-aggregation, the §2.1 quadratic fallback, and
   end-to-end equivalence with hand-written dataflow plans. *)

open Orq_proto
open Orq_core
open Orq_planner

let rows_t = Alcotest.(list (list int))
let hm () = Ctx.create ~seed:61 Ctx.Sh_hm

let customers ctx =
  Table.create ctx "customers"
    [ ("cust", 8, [| 1; 2; 3; 4 |]); ("seg", 4, [| 1; 2; 1; 2 |]) ]

let orders ctx =
  Table.create ctx "orders"
    [
      ("cust", 8, [| 2; 1; 2; 3; 2; 9 |]);
      ("oid", 8, [| 1; 2; 3; 4; 5; 6 |]);
      ("price", 10, [| 10; 20; 30; 40; 50; 60 |]);
    ]

(* ---------------- inference ---------------- *)

let test_inference () =
  let ctx = hm () in
  let c = Plan.scan ~keys:[ [ "cust" ] ] (customers ctx) in
  let o = Plan.scan ~keys:[ [ "oid" ] ] (orders ctx) in
  let j = Plan.join c o ~on:[ "cust" ] in
  let i = Plan.infer j in
  Alcotest.(check bool) "join keeps many-side key" true
    (List.mem [ "oid" ] i.Plan.i_keys);
  Alcotest.(check bool) "join output not unique on cust" false
    (Plan.unique_on j [ "cust" ]);
  let a =
    Plan.aggregate ~keys:[ "cust" ]
      ~aggs:[ { Dataflow.src = "price"; dst = "s"; fn = Dataflow.Sum } ]
      j
  in
  Alcotest.(check bool) "aggregate keys become unique" true
    (Plan.unique_on a [ "cust" ]);
  let p = Plan.project [ "price" ] j in
  Alcotest.(check bool) "projection drops keys" false
    (Plan.unique_on p [ "oid" ])

(* ---------------- pushdown ---------------- *)

let test_pushdown () =
  let ctx = hm () in
  let c = Plan.scan ~keys:[ [ "cust" ] ] (customers ctx) in
  let o = Plan.scan ~keys:[ [ "oid" ] ] (orders ctx) in
  let plan =
    Plan.filter
      Expr.(col "seg" ==. const 1 &&. (col "price" >. const 15))
      (Plan.join c o ~on:[ "cust" ])
  in
  let opt = Optimize.run plan in
  (* both conjuncts must sit below the join after pushdown *)
  (match opt with
  | Plan.Join { j_left = Plan.Filter _; j_right = Plan.Filter _; _ } -> ()
  | _ -> Alcotest.failf "filters not pushed: %s" (Plan.explain opt));
  let t, fb = Compile.run plan in
  Alcotest.(check int) "no fallback" 0 fb;
  Alcotest.(check rows_t) "pushed-down plan correct"
    [ [ 1; 20 ]; [ 3; 40 ] ]
    (Table.valid_rows_sorted t [ "cust"; "price" ])

let test_pushdown_saves_bytes () =
  let run optimize =
    let ctx = hm () in
    let c = Plan.scan ~keys:[ [ "cust" ] ] (customers ctx) in
    let o = Plan.scan ~keys:[ [ "oid" ] ] (orders ctx) in
    let plan =
      Plan.filter
        Expr.(col "price" >. const 15)
        (Plan.join c o ~on:[ "cust" ])
    in
    ignore (Compile.run ~optimize plan);
    (Orq_net.Comm.snapshot ctx.Ctx.comm).Orq_net.Comm.t_bits
  in
  (* at these tiny sizes pushdown mostly trades where the filter runs;
     the optimized plan must never be more expensive *)
  Alcotest.(check bool) "optimized plan not costlier" true
    (run true <= run false)

(* ---------------- orientation ---------------- *)

let test_orientation () =
  let ctx = hm () in
  (* unique side given on the right: the optimizer must swap it to the
     left so the one-to-many operator applies *)
  let plan =
    Plan.join
      (Plan.scan ~keys:[ [ "oid" ] ] (orders ctx))
      (Plan.scan ~keys:[ [ "cust" ] ] (customers ctx))
      ~on:[ "cust" ]
  in
  let opt = Optimize.run plan in
  (match opt with
  | Plan.Join { j_left; _ } ->
      Alcotest.(check bool) "left is unique side" true
        (Plan.unique_on j_left [ "cust" ])
  | _ -> Alcotest.fail "not a join");
  let t, fb = Compile.run plan in
  Alcotest.(check int) "no fallback" 0 fb;
  Alcotest.(check rows_t) "swapped join correct"
    [ [ 1; 20 ]; [ 2; 10 ]; [ 2; 30 ]; [ 2; 50 ]; [ 3; 40 ] ]
    (Table.valid_rows_sorted t [ "cust"; "price" ])

(* ---------------- automatic §3.6 pre-aggregation ---------------- *)

let dup_tables ctx =
  (* duplicates on BOTH sides of key k *)
  let l = Table.create ctx "L" [ ("k", 4, [| 1; 1; 2; 2; 2 |]) ] in
  let r =
    Table.create ctx "R"
      [ ("k", 4, [| 1; 2; 2; 7 |]); ("v", 8, [| 5; 10; 20; 99 |]) ]
  in
  (l, r)

let test_auto_preagg_count () =
  let ctx = hm () in
  let l, r = dup_tables ctx in
  let plan =
    Plan.aggregate ~keys:[ "k" ]
      ~aggs:[ { Dataflow.src = "k"; dst = "n"; fn = Dataflow.Count } ]
      (Plan.join (Plan.scan l) (Plan.scan r) ~on:[ "k" ])
  in
  let t, fb = Compile.run plan in
  Alcotest.(check int) "no quadratic fallback (rewritten)" 0 fb;
  (* |join| per k: k=1 -> 2x1=2; k=2 -> 3x2=6 *)
  Alcotest.(check rows_t) "many-to-many count" [ [ 1; 2 ]; [ 2; 6 ] ]
    (Table.valid_rows_sorted t [ "k"; "n" ])

let test_auto_preagg_sum () =
  let ctx = hm () in
  let l, r = dup_tables ctx in
  let plan =
    Plan.aggregate ~keys:[ "k" ]
      ~aggs:[ { Dataflow.src = "v"; dst = "s"; fn = Dataflow.Sum } ]
      (Plan.join (Plan.scan l) (Plan.scan r) ~on:[ "k" ])
  in
  let t, fb = Compile.run plan in
  Alcotest.(check int) "no quadratic fallback (rewritten)" 0 fb;
  (* SUM(v) over the join: k=1 -> 2*5=10; k=2 -> 3*(10+20)=90 *)
  Alcotest.(check rows_t) "many-to-many sum" [ [ 1; 10 ]; [ 2; 90 ] ]
    (Table.valid_rows_sorted t [ "k"; "s" ])

(* ---------------- quadratic fallback ---------------- *)

let test_quadratic_fallback () =
  let ctx = hm () in
  let l, r = dup_tables ctx in
  (* a raw many-to-many join with no decomposable aggregation above it:
     outside the tractable class, must fall back and stay correct *)
  let plan = Plan.join (Plan.scan l) (Plan.scan r) ~on:[ "k" ] in
  let t, fb = Compile.run plan in
  Alcotest.(check int) "fallback used" 1 fb;
  Alcotest.(check rows_t) "quadratic join correct"
    [ [ 1; 5 ]; [ 1; 5 ]; [ 2; 10 ]; [ 2; 10 ]; [ 2; 10 ];
      [ 2; 20 ]; [ 2; 20 ]; [ 2; 20 ] ]
    (Table.valid_rows_sorted t [ "k"; "v" ])

(* ---------------- end-to-end Q3-shaped plan ---------------- *)

let test_q3_shaped_plan () =
  let ctx = Ctx.create ~seed:63 Ctx.Sh_hm in
  let db = Orq_workloads.Tpch_gen.share ctx (Orq_workloads.Tpch_gen.generate ~seed:5 0.0002) in
  let c =
    Plan.scan ~keys:[ [ "c_custkey" ] ]
      (Orq_workloads.Tpch_util.select db.Orq_workloads.Tpch_gen.m_customer
         [ ("c_custkey", "o_custkey"); ("c_mktsegment", "c_mktsegment") ])
  in
  let o = Plan.scan ~keys:[ [ "o_orderkey" ] ] db.Orq_workloads.Tpch_gen.m_orders in
  let plan =
    Plan.top [ ("total", Tablesort.Desc) ] 5
      (Plan.aggregate ~keys:[ "o_custkey" ]
         ~aggs:[ { Dataflow.src = "o_totalprice"; dst = "total"; fn = Dataflow.Sum } ]
         (Plan.filter
            Expr.(col "c_mktsegment" ==. const 1 &&. (col "o_orderdate" <. const 1000))
            (Plan.join c o ~on:[ "o_custkey" ])))
  in
  let t, fb = Compile.run plan in
  Alcotest.(check int) "no fallback" 0 fb;
  (* hand-written dataflow equivalent *)
  let c2 =
    Dataflow.filter
      (Orq_workloads.Tpch_util.select db.Orq_workloads.Tpch_gen.m_customer
         [ ("c_custkey", "o_custkey"); ("c_mktsegment", "c_mktsegment") ])
      Expr.(col "c_mktsegment" ==. const 1)
  in
  let o2 =
    Dataflow.filter db.Orq_workloads.Tpch_gen.m_orders
      Expr.(col "o_orderdate" <. const 1000)
  in
  let j2 = Dataflow.inner_join c2 o2 ~on:[ "o_custkey" ] in
  let a2 =
    Dataflow.aggregate j2 ~keys:[ "o_custkey" ]
      ~aggs:[ { Dataflow.src = "o_totalprice"; dst = "total"; fn = Dataflow.Sum } ]
  in
  let h = Dataflow.limit (Dataflow.order_by a2 [ ("total", Dataflow.Desc) ]) 5 in
  Alcotest.(check rows_t) "planned = hand-written"
    (Table.valid_rows_sorted h [ "o_custkey"; "total" ])
    (Table.valid_rows_sorted t [ "o_custkey"; "total" ])

let contains hay needle =
  let nh = String.length hay and nn = String.length needle in
  let rec go i = i + nn <= nh && (String.sub hay i nn = needle || go (i + 1)) in
  go 0

let test_explain () =
  let ctx = hm () in
  let plan =
    Plan.filter
      Expr.(col "seg" ==. const 1)
      (Plan.scan ~keys:[ [ "cust" ] ] (customers ctx))
  in
  let s = Plan.explain plan in
  Alcotest.(check bool) "explain shows structure" true
    (contains s "Filter" && contains s "Scan(customers");
  Alcotest.(check bool) "explain shows keys" true (contains s "keys: cust")

let suite =
  [
    Alcotest.test_case "schema/key inference" `Quick test_inference;
    Alcotest.test_case "filter pushdown" `Quick test_pushdown;
    Alcotest.test_case "pushdown not costlier" `Quick test_pushdown_saves_bytes;
    Alcotest.test_case "join orientation" `Quick test_orientation;
    Alcotest.test_case "auto pre-aggregation (count)" `Quick
      test_auto_preagg_count;
    Alcotest.test_case "auto pre-aggregation (sum)" `Quick test_auto_preagg_sum;
    Alcotest.test_case "quadratic fallback (outside class)" `Quick
      test_quadratic_fallback;
    Alcotest.test_case "Q3-shaped plan = hand-written" `Quick
      test_q3_shaped_plan;
    Alcotest.test_case "explain" `Quick test_explain;
  ]

let () = Alcotest.run "orq_planner" [ ("planner", suite) ]
