(* Real multi-party deployment (lib/party/): mesh wire protocol
   roundtrips and hostile-input rejection, handshake verification, the
   exchange layer's lockstep + divergence detection over a real
   socketpair, and a forked two-party cluster smoke test on Unix-domain
   sockets — results and measured wire traffic identical to the
   in-process simulation, hostile clients dropped without hurting the
   cluster. *)

open Orq_proto
module Wire = Orq_net.Wire
module Comm = Orq_net.Comm
module Transport = Orq_net.Transport
module Pwire = Orq_party.Pwire
module Exchange = Orq_party.Exchange
module Cluster = Orq_party.Cluster
module Client = Orq_service.Client

let contains s sub =
  let n = String.length s and m = String.length sub in
  let rec go i = i + m <= n && (String.sub s i m = sub || go (i + 1)) in
  m = 0 || go 0

(* ------------------------------------------------------------------ *)
(* Mesh wire protocol                                                  *)
(* ------------------------------------------------------------------ *)

let sample_hello =
  {
    Pwire.p_version = Pwire.version;
    p_party = 2;
    p_parties = 3;
    p_proto = "sh-hm";
    p_seed = 42;
    p_sf = 0.001;
    p_ell = 64;
  }

let sample_msgs =
  [
    Pwire.Hello_p sample_hello;
    Pwire.Reject_p "protocol mismatch: sh-dm vs sh-hm";
    Pwire.Query_c
      { q_qid = 7; q_sql = "SELECT 1 FROM nation"; q_max_rows = 100 };
    Pwire.Round_p
      {
        r_seq = 12;
        r_events = 3;
        r_bits = 4096;
        r_msgs = 6;
        r_payload = String.init 171 (fun i -> Char.chr (i mod 256));
      };
    Pwire.Fence_p
      {
        f_qid = 7;
        f_party = 1;
        f_rounds = 110;
        f_bits = 25_288_779;
        f_msgs = 510;
        f_digest = 0x1234_5678_9abc;
        f_exchanges = 149;
        f_refunds = 39;
        f_sent_bits = 8_429_593;
        f_sent_msgs = 170;
        f_payload_bytes = 1_053_700;
        f_frames = 149;
      };
    Pwire.Bye_p;
  ]

let test_pwire_roundtrip () =
  List.iter
    (fun m ->
      let m' = Pwire.decode (Pwire.encode m) in
      Alcotest.(check string)
        (Pwire.msg_label m) (Pwire.msg_label m) (Pwire.msg_label m');
      Alcotest.(check bool) "roundtrip" true (m = m'))
    sample_msgs

(* Any frame whose body does not open with the 4-byte mesh magic is
   rejected — stray service clients and garbage look the same here. *)
let test_pwire_bad_magic () =
  let hostile =
    [
      Bytes.of_string "XXXX\x01rest";
      (* a service-protocol frame body: right framing, wrong protocol *)
      Wire.encode_request Wire.Ping;
      Bytes.of_string "OR";
      Bytes.empty;
    ]
  in
  List.iter
    (fun body ->
      match Pwire.decode body with
      | _ -> Alcotest.fail "hostile frame body must not decode"
      | exception Pwire.Party_error _ -> ())
    hostile

let test_pwire_unknown_tag () =
  let body = Bytes.of_string (Pwire.magic ^ "\xee") in
  match Pwire.decode body with
  | _ -> Alcotest.fail "unknown tag must not decode"
  | exception Pwire.Party_error _ -> ()

let test_pwire_truncated_body () =
  (* take a valid encoded Fence_p and chop it mid-field *)
  let full = Pwire.encode (List.nth sample_msgs 4) in
  let cut = Bytes.sub full 0 (Bytes.length full - 7) in
  match Pwire.decode cut with
  | _ -> Alcotest.fail "truncated body must not decode"
  | exception (Pwire.Party_error _ | Wire.Wire_error _) -> ()

(* The length-prefix attacks from the service tests, replayed against
   the mesh receiver: a hostile prefix larger than max_frame must be
   rejected before any allocation; a mid-frame disconnect must raise,
   not return a short frame. *)
let test_pwire_oversized_prefix () =
  let a, b = Unix.socketpair Unix.PF_UNIX Unix.SOCK_STREAM 0 in
  Fun.protect ~finally:(fun () ->
      Unix.close a;
      Unix.close b)
  @@ fun () ->
  assert (Unix.write a (Bytes.of_string "\xff\xff\xff\xff") 0 4 = 4);
  Unix.shutdown a Unix.SHUTDOWN_SEND;
  match Pwire.recv b with
  | _ -> Alcotest.fail "oversized length prefix must raise"
  | exception Wire.Wire_error _ -> ()

let test_pwire_midframe_disconnect () =
  let a, b = Unix.socketpair Unix.PF_UNIX Unix.SOCK_STREAM 0 in
  Fun.protect ~finally:(fun () ->
      Unix.close a;
      Unix.close b)
  @@ fun () ->
  (* header promises 100 bytes, the peer dies after 10 *)
  let hdr = Bytes.create 4 in
  Bytes.set_int32_be hdr 0 100l;
  assert (Unix.write a hdr 0 4 = 4);
  assert (Unix.write a (Bytes.make 10 'x') 0 10 = 10);
  Unix.shutdown a Unix.SHUTDOWN_SEND;
  match Pwire.recv b with
  | _ -> Alcotest.fail "mid-frame disconnect must raise"
  | exception Wire.Wire_error _ -> ()

let test_pwire_partial_header_disconnect () =
  let a, b = Unix.socketpair Unix.PF_UNIX Unix.SOCK_STREAM 0 in
  Fun.protect ~finally:(fun () ->
      Unix.close a;
      Unix.close b)
  @@ fun () ->
  assert (Unix.write a (Bytes.of_string "\x00\x00") 0 2 = 2);
  Unix.shutdown a Unix.SHUTDOWN_SEND;
  match Pwire.recv b with
  | _ -> Alcotest.fail "partial header must raise"
  | exception Wire.Wire_error _ -> ()

let test_pwire_clean_eof () =
  let a, b = Unix.socketpair Unix.PF_UNIX Unix.SOCK_STREAM 0 in
  Fun.protect ~finally:(fun () ->
      Unix.close a;
      Unix.close b)
  @@ fun () ->
  Unix.shutdown a Unix.SHUTDOWN_SEND;
  Alcotest.(check bool) "EOF at a frame boundary" true (Pwire.recv b = None)

(* ------------------------------------------------------------------ *)
(* Payload split                                                       *)
(* ------------------------------------------------------------------ *)

let test_share_of () =
  List.iter
    (fun (total, parties) ->
      let shares =
        List.init parties (fun party ->
            Exchange.share_of ~party ~parties total)
      in
      Alcotest.(check int)
        (Printf.sprintf "sum %d/%d" total parties)
        total
        (List.fold_left ( + ) 0 shares);
      let mx = List.fold_left max 0 shares
      and mn = List.fold_left min max_int shares in
      Alcotest.(check bool) "balanced" true (mx - mn <= 1))
    [ (0, 2); (1, 3); (7, 2); (25_288_779, 3); (63, 4); (64, 4); (65, 4) ]

(* ------------------------------------------------------------------ *)
(* Handshake                                                           *)
(* ------------------------------------------------------------------ *)

let hello_for ?(version = Pwire.version) ?(seed = 42) ?(sf = 0.001)
    ?(parties = 3) ?(proto = "sh-hm") ?(ell = 64) party =
  {
    Pwire.p_version = version;
    p_party = party;
    p_parties = parties;
    p_proto = proto;
    p_seed = seed;
    p_sf = sf;
    p_ell = ell;
  }

let test_verify_hello () =
  let mine = hello_for 0 in
  let ok theirs = Cluster.verify_hello ~mine ~theirs in
  Alcotest.(check bool) "peer id may differ" true (ok (hello_for 2) = Ok ());
  let rejects label theirs =
    match ok theirs with
    | Ok () -> Alcotest.fail (label ^ ": mismatch must be rejected")
    | Error _ -> ()
  in
  rejects "version" (hello_for ~version:(Pwire.version + 1) 2);
  rejects "parties" (hello_for ~parties:4 2);
  rejects "proto" (hello_for ~proto:"mal-hm" 2);
  rejects "seed" (hello_for ~seed:43 2);
  rejects "sf" (hello_for ~sf:0.01 2);
  rejects "ell" (hello_for ~ell:32 2);
  rejects "same party id" (hello_for 0)

(* Run the two handshake halves over a socketpair, the dialer in a
   thread, exactly as the mesh does it. *)
let handshake_pair ~acceptor ~dialer ~expect =
  let a, b = Unix.socketpair Unix.PF_UNIX Unix.SOCK_STREAM 0 in
  Fun.protect ~finally:(fun () ->
      (try Unix.close a with Unix.Unix_error _ -> ());
      try Unix.close b with Unix.Unix_error _ -> ())
  @@ fun () ->
  let dial_r = ref (Error "did not run") in
  let th =
    Thread.create
      (fun () -> dial_r := Cluster.dial_handshake ~mine:dialer ~expect b)
      ()
  in
  let acc_r = Cluster.accept_handshake ~mine:acceptor a in
  Thread.join th;
  (acc_r, !dial_r)

let test_handshake_ok () =
  (* party 1 dials party 0: both sides succeed and learn the peer id *)
  let acc, dial =
    handshake_pair ~acceptor:(hello_for 0) ~dialer:(hello_for 1) ~expect:0
  in
  Alcotest.(check bool) "acceptor learns id" true (acc = Ok 1);
  Alcotest.(check bool) "dialer verified" true (dial = Ok ())

let test_handshake_rejects_mismatch () =
  (* a dialer from a different session (wrong seed) is refused with a
     reasoned Reject_p, and sees that reason *)
  let acc, dial =
    handshake_pair ~acceptor:(hello_for 0)
      ~dialer:(hello_for ~seed:1337 1)
      ~expect:0
  in
  (match acc with
  | Ok _ -> Alcotest.fail "acceptor must refuse a wrong-seed dialer"
  | Error reason ->
      Alcotest.(check bool)
        "reason names the seed" true
        (contains (String.lowercase_ascii reason) "seed"));
  match dial with
  | Ok () -> Alcotest.fail "dialer must see the rejection"
  | Error _ -> ()

let test_handshake_rejects_version () =
  let acc, dial =
    handshake_pair ~acceptor:(hello_for 0)
      ~dialer:(hello_for ~version:(Pwire.version + 9) 1)
      ~expect:0
  in
  Alcotest.(check bool) "acceptor refuses" true (Result.is_error acc);
  Alcotest.(check bool) "dialer refused" true (dial <> Ok ())

let test_handshake_rejects_wrong_direction () =
  (* lower ids accept, higher ids dial: party 0 dialing party 1 is a
     topology violation *)
  let acc, _ =
    handshake_pair ~acceptor:(hello_for 1) ~dialer:(hello_for 0) ~expect:1
  in
  Alcotest.(check bool) "direction enforced" true (Result.is_error acc)

let test_handshake_rejects_garbage () =
  let a, b = Unix.socketpair Unix.PF_UNIX Unix.SOCK_STREAM 0 in
  Fun.protect ~finally:(fun () ->
      (try Unix.close a with Unix.Unix_error _ -> ());
      try Unix.close b with Unix.Unix_error _ -> ())
  @@ fun () ->
  (* a service-protocol client that wandered onto a mesh port: correct
     framing, wrong protocol entirely *)
  Wire.write_frame b
    (Wire.encode_request
       (Wire.Hello
          {
            h_version = Wire.protocol_version;
            h_proto = "sh-hm";
            h_client = "lost";
          }));
  match Cluster.accept_handshake ~mine:(hello_for 0) a with
  | Ok _ -> Alcotest.fail "service hello must not pass the mesh handshake"
  | Error _ -> ()

(* ------------------------------------------------------------------ *)
(* Exchange layer over a real socketpair                               *)
(* ------------------------------------------------------------------ *)

(* Both parties of a 2-party mesh run the identical metering sequence in
   parallel; the channel hooks must produce matching exchanges and the
   fence must agree — with physical exchanges = metered rounds + refunds
   and per-party payload shares summing to the metered bits exactly. *)
let drive_exchange e ~digest ~bits0 =
  Exchange.reset_query e;
  let ch = Exchange.channel e in
  ch.Comm.ch_round ~bits:bits0 ~messages:2;
  ch.Comm.ch_traffic ~bits:72 ~messages:1;
  ch.Comm.ch_barrier 2;
  ch.Comm.ch_round ~bits:8 ~messages:1;
  ch.Comm.ch_refund 1;
  let tally =
    { Comm.t_rounds = 3; t_bits = bits0 + 80; t_messages = 4 }
  in
  Exchange.fence e ~qid:3 ~tally ~digest

let with_two_party_mesh f =
  let a, b = Unix.socketpair Unix.PF_UNIX Unix.SOCK_STREAM 0 in
  let e0 = Exchange.create ~party:0 ~parties:2 [ (1, a) ] in
  let e1 = Exchange.create ~party:1 ~parties:2 [ (0, b) ] in
  Fun.protect ~finally:(fun () ->
      (* both meshes live in this process: shutdown delivers EOF to the
         receiver threads (a bare close would not wake them) *)
      (try Unix.shutdown a Unix.SHUTDOWN_ALL with Unix.Unix_error _ -> ());
      (try Unix.shutdown b Unix.SHUTDOWN_ALL with Unix.Unix_error _ -> ());
      Exchange.close e0;
      Exchange.close e1)
  @@ fun () -> f e0 e1

let test_exchange_lockstep () =
  with_two_party_mesh @@ fun e0 e1 ->
  let r1 = ref (Error "did not run") in
  let th =
    Thread.create
      (fun () ->
        r1 :=
          try Ok (drive_exchange e1 ~digest:0xfeed ~bits0:128)
          with e -> Error (Printexc.to_string e))
      ()
  in
  let fences0 = drive_exchange e0 ~digest:0xfeed ~bits0:128 in
  Thread.join th;
  let fences1 =
    match !r1 with Ok f -> f | Error m -> Alcotest.fail m
  in
  Alcotest.(check int) "fences per party" 2 (Array.length fences0);
  Array.iteri
    (fun p f ->
      Alcotest.(check int) "party" p f.Pwire.f_party;
      Alcotest.(check int) "metered rounds" 3 f.Pwire.f_rounds;
      Alcotest.(check int) "metered bits" 208 f.Pwire.f_bits;
      Alcotest.(check int) "metered msgs" 4 f.Pwire.f_msgs;
      (* 2 payload rounds + 2 barrier exchanges, 1 refunded *)
      Alcotest.(check int) "physical exchanges" 4 f.Pwire.f_exchanges;
      Alcotest.(check int) "refunds" 1 f.Pwire.f_refunds;
      Alcotest.(check int)
        "exchanges - refunds = rounds"
        f.Pwire.f_rounds
        (f.Pwire.f_exchanges - f.Pwire.f_refunds))
    fences0;
  (* both parties collected the same fences *)
  Alcotest.(check bool) "fences agree" true (fences0 = fences1);
  let sum f = Array.fold_left (fun acc x -> acc + f x) 0 fences0 in
  Alcotest.(check int)
    "payload shares sum to metered bits" 208
    (sum (fun f -> f.Pwire.f_sent_bits));
  Alcotest.(check int)
    "message shares sum to metered messages" 4
    (sum (fun f -> f.Pwire.f_sent_msgs))

(* The first round whose metered totals differ across parties kills the
   query on both sides — divergence cannot survive until the fence. *)
let test_exchange_detects_divergence () =
  with_two_party_mesh @@ fun e0 e1 ->
  let failed = ref 0 in
  let m = Mutex.create () in
  let run e bits0 =
    (try ignore (drive_exchange e ~digest:0xfeed ~bits0)
     with Pwire.Party_error _ ->
       Mutex.lock m;
       incr failed;
       Mutex.unlock m);
    ()
  in
  let th = Thread.create (fun () -> run e1 64) () in
  run e0 128;
  Thread.join th;
  Alcotest.(check int) "both parties abort" 2 !failed

let test_exchange_detects_digest_divergence () =
  with_two_party_mesh @@ fun e0 e1 ->
  let failed = ref 0 in
  let m = Mutex.create () in
  let run e digest =
    (try ignore (drive_exchange e ~digest ~bits0:128)
     with Pwire.Party_error _ ->
       Mutex.lock m;
       incr failed;
       Mutex.unlock m);
    ()
  in
  let th = Thread.create (fun () -> run e1 0xbeef) () in
  run e0 0xfeed;
  Thread.join th;
  Alcotest.(check int) "divergent results abort the fence" 2 !failed

(* ------------------------------------------------------------------ *)
(* Forked local cluster (Unix-domain sockets)                          *)
(* ------------------------------------------------------------------ *)

let nation_sql = "SELECT n_regionkey, COUNT(*) AS n FROM nation GROUP BY n_regionkey"

let query_ok c sql =
  match Client.query c sql with
  | Ok r -> r
  | Error (_, msg) -> Alcotest.fail ("cluster query failed: " ^ msg)

(* One forked 2-party cluster exercises the whole stack: handshake,
   mesh, coordinator, and the service front end — results identical to
   the in-process simulation, measured wire equal to the meter, hostile
   clients dropped without disturbing the parties. *)
let test_cluster_smoke () =
  let l = Cluster.launch_local ~tcp:false ~seed:42 ~sf:0.001 Ctx.Sh_dm in
  Fun.protect ~finally:(fun () -> Cluster.shutdown_local l) @@ fun () ->
  let addr = Transport.format_addr l.Cluster.l_client in
  (* sessions are served one at a time: run the whole first session and
     close it before probing with hostile clients *)
  let r =
    let c = Client.connect ~timeout_ms:120_000 ~retry_ms:15_000 addr in
    Fun.protect ~finally:(fun () -> Client.close c) @@ fun () ->
    (* the cluster serves exactly one protocol: the other labels are
       refused with a reason, the right one is accepted *)
    (match Client.set_protocol c "sh-hm" with
    | Ok _ -> Alcotest.fail "a sh-dm cluster must refuse sh-hm sessions"
    | Error _ -> ());
    (match Client.set_protocol c "sh-dm" with
    | Ok label -> Alcotest.(check string) "canonical label" "SH-DM" label
    | Error msg ->
        Alcotest.fail ("cluster refused its own protocol: " ^ msg));
    let r = query_ok c nation_sql in
  (* byte-identical to the in-process simulation on the same seed *)
  let reference =
    let ctx = Ctx.create ~seed:42 Ctx.Sh_dm in
    let db =
      Orq_workloads.Tpch_gen.share ctx
        (Orq_workloads.Tpch_gen.generate ~seed:42 0.001)
    in
    let qseed =
      Orq_service.Service.query_seed_for ~seed:42
        ~proto_label:(Ctx.kind_label Ctx.Sh_dm) ~sql:nation_sql
    in
    Orq_service.Service.execute_sql ~ctx ~db ~qseed ~max_rows:10_000
      nation_sql
  in
  (match reference with
  | Wire.Result re ->
      Alcotest.(check bool) "identical to simulation" true (r = re)
  | _ -> Alcotest.fail "reference execution failed");
  (* the measured wire equals the meter *)
    (match Client.net_stats c with
    | Error msg -> Alcotest.fail ("net_stats: " ^ msg)
    | Ok s ->
        Alcotest.(check int) "parties" 2 s.Wire.n_parties;
        Alcotest.(check int) "bits" r.Wire.r_tally.Comm.t_bits s.Wire.n_bits;
        Alcotest.(check int)
          "messages" r.Wire.r_tally.Comm.t_messages s.Wire.n_messages;
        Alcotest.(check int)
          "exchanges - refunds = rounds" r.Wire.r_tally.Comm.t_rounds
          (s.Wire.n_exchanges - s.Wire.n_refunds));
    r
  in
  (* a hostile client: garbage bytes, then a mid-frame disconnect — the
     session dies, the cluster does not *)
  let hostile = Transport.connect (Transport.parse_addr_exn addr) in
  assert (Unix.write hostile (Bytes.of_string "\xde\xad\xbe\xef") 0 4 = 4);
  Unix.close hostile;
  let hostile2 = Transport.connect (Transport.parse_addr_exn addr) in
  let hdr = Bytes.create 4 in
  Bytes.set_int32_be hdr 0 64l;
  assert (Unix.write hostile2 hdr 0 4 = 4);
  assert (Unix.write hostile2 (Bytes.make 3 'z') 0 3 = 3);
  Unix.close hostile2;
  (* a version-mismatched Hello gets a reasoned refusal, not a hang *)
  let old = Transport.connect (Transport.parse_addr_exn addr) in
  Wire.write_frame old
    (Wire.encode_request
       (Wire.Hello
          { h_version = 999; h_proto = "sh-dm"; h_client = "relic" }));
  (match Wire.read_frame old with
  | Some body -> (
      match Wire.decode_response body with
      | Wire.Error_r { code = Wire.Bad_request; msg } ->
          Alcotest.(check bool)
            "refusal names the versions" true
            (contains msg "version")
      | _ -> Alcotest.fail "version mismatch must be a Bad_request")
  | None -> Alcotest.fail "version mismatch must be answered");
  Unix.close old;
  (* the cluster survived all three and still answers new sessions *)
  Alcotest.(check bool) "all parties alive" true (Cluster.alive l);
  let c2 = Client.connect ~timeout_ms:120_000 addr in
  Fun.protect ~finally:(fun () -> Client.close c2) @@ fun () ->
  (match Client.set_protocol c2 "sh-dm" with
  | Ok _ -> ()
  | Error msg -> Alcotest.fail ("post-hostile session refused: " ^ msg));
  let r2 = query_ok c2 nation_sql in
  Alcotest.(check bool)
    "replay identical" true
    (r2.Wire.r_rows = r.Wire.r_rows
    && r2.Wire.r_cols = r.Wire.r_cols
    && r2.Wire.r_tally = r.Wire.r_tally)

let () =
  Alcotest.run "party"
    [
      ( "pwire",
        [
          Alcotest.test_case "roundtrip" `Quick test_pwire_roundtrip;
          Alcotest.test_case "bad magic" `Quick test_pwire_bad_magic;
          Alcotest.test_case "unknown tag" `Quick test_pwire_unknown_tag;
          Alcotest.test_case "truncated body" `Quick test_pwire_truncated_body;
          Alcotest.test_case "oversized prefix" `Quick
            test_pwire_oversized_prefix;
          Alcotest.test_case "mid-frame disconnect" `Quick
            test_pwire_midframe_disconnect;
          Alcotest.test_case "partial header" `Quick
            test_pwire_partial_header_disconnect;
          Alcotest.test_case "clean EOF" `Quick test_pwire_clean_eof;
        ] );
      ( "share",
        [ Alcotest.test_case "share_of" `Quick test_share_of ] );
      ( "handshake",
        [
          Alcotest.test_case "verify_hello" `Quick test_verify_hello;
          Alcotest.test_case "ok" `Quick test_handshake_ok;
          Alcotest.test_case "seed mismatch" `Quick
            test_handshake_rejects_mismatch;
          Alcotest.test_case "version mismatch" `Quick
            test_handshake_rejects_version;
          Alcotest.test_case "wrong direction" `Quick
            test_handshake_rejects_wrong_direction;
          Alcotest.test_case "garbage" `Quick test_handshake_rejects_garbage;
        ] );
      ( "exchange",
        [
          Alcotest.test_case "lockstep" `Quick test_exchange_lockstep;
          Alcotest.test_case "metered divergence" `Quick
            test_exchange_detects_divergence;
          Alcotest.test_case "digest divergence" `Quick
            test_exchange_detects_digest_divergence;
        ] );
      ( "cluster",
        [ Alcotest.test_case "2-party smoke" `Slow test_cluster_smoke ] );
    ]
