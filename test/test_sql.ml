(* Tests for the SQL front-end: lexing/parsing, lowering to logical plans,
   execution against the plaintext reference, aggregates, joins (incl.
   the automatic many-to-many rewrite reached from SQL), ORDER BY/LIMIT,
   and parse-error reporting. *)

open Orq_proto
open Orq_core
open Orq_planner

let rows_t = Alcotest.(list (list int))
let hm () = Ctx.create ~seed:71 Ctx.Sh_hm

let catalog ctx : Sql.catalog =
  let customers =
    Table.create ctx "customers"
      [ ("cust", 8, [| 1; 2; 3; 4 |]); ("seg", 4, [| 1; 2; 1; 2 |]) ]
  in
  let orders =
    Table.create ctx "orders"
      [
        ("cust", 8, [| 2; 1; 2; 3; 2; 9 |]);
        ("oid", 8, [| 1; 2; 3; 4; 5; 6 |]);
        ("price", 10, [| 10; 20; 30; 40; 50; 60 |]);
        ("disc", 7, [| 0; 50; 10; 25; 0; 0 |]);
      ]
  in
  let visits_a = Table.create ctx "va" [ ("pid", 4, [| 1; 1; 2 |]) ] in
  let visits_b =
    Table.create ctx "vb" [ ("pid", 4, [| 1; 2; 2 |]); ("cost", 8, [| 5; 7; 9 |]) ]
  in
  fun name ->
    match name with
    | "customers" -> (customers, [ [ "cust" ] ])
    | "orders" -> (orders, [ [ "oid" ] ])
    | "va" -> (visits_a, [])
    | "vb" -> (visits_b, [])
    | _ -> raise Not_found

let run sql =
  let ctx = hm () in
  let t, cols, fb = Sql.run (catalog ctx) sql in
  (Table.valid_rows_sorted t cols, fb)

let test_select_where () =
  let rows, fb = run "SELECT oid, price FROM orders WHERE price >= 30 AND disc < 25" in
  Alcotest.(check int) "no fallback" 0 fb;
  Alcotest.(check rows_t) "filtered rows" [ [ 3; 30 ]; [ 5; 50 ]; [ 6; 60 ] ] rows

let test_derived_column () =
  let rows, _ =
    run "SELECT oid, price * (100 - disc) / 100 AS net FROM orders WHERE disc > 0"
  in
  Alcotest.(check rows_t) "net prices" [ [ 2; 10 ]; [ 3; 27 ]; [ 4; 30 ] ] rows

let test_join_group () =
  let rows, fb =
    run
      "SELECT cust, SUM(price) AS total, COUNT(*) AS n FROM customers JOIN \
       orders USING (cust) WHERE seg = 2 GROUP BY cust"
  in
  Alcotest.(check int) "no fallback" 0 fb;
  Alcotest.(check rows_t) "per-customer totals" [ [ 2; 90; 3 ] ] rows

let test_join_on_syntax () =
  let rows, _ =
    run "SELECT cust, oid FROM customers JOIN orders ON cust = cust WHERE seg = 1"
  in
  Alcotest.(check rows_t) "ON join" [ [ 1; 2 ]; [ 3; 4 ] ] rows

let test_join_on_rename () =
  (* ON with distinct names renames the right column into the left's:
     cust(1..4) against vb.pid(1,2,2) — TPC-H-style prefixed schemas
     join without a rename view *)
  let rows, fb = run "SELECT cust, cost FROM customers JOIN vb ON cust = pid" in
  Alcotest.(check int) "no fallback" 0 fb;
  Alcotest.(check rows_t) "renamed ON join"
    [ [ 1; 5 ]; [ 2; 7 ]; [ 2; 9 ] ]
    rows;
  (* renaming onto a name the right table already carries is ambiguous *)
  match run "SELECT cust FROM customers JOIN orders ON cust = oid" with
  | exception Sql.Parse_error _ -> ()
  | _ -> Alcotest.fail "expected ambiguity error for ON cust = oid"

let test_order_limit () =
  let ctx = hm () in
  let t, _, _ =
    Sql.run (catalog ctx)
      "SELECT oid, price FROM orders ORDER BY price DESC LIMIT 2"
  in
  let cols, _ = Table.peek t in
  Alcotest.(check (array int)) "top-2 by price" [| 60; 50 |]
    (List.assoc "price" cols)

let test_min_max_avg () =
  let rows, _ =
    run
      "SELECT seg, MIN(price) AS lo, MAX(price) AS hi, AVG(price) AS mean \
       FROM customers JOIN orders USING (cust) GROUP BY seg"
  in
  (* seg 1: cust 1,3 -> prices 20,40 ; seg 2: cust 2 -> 10,30,50 *)
  Alcotest.(check rows_t) "min/max/avg"
    [ [ 1; 20; 40; 30 ]; [ 2; 10; 50; 30 ] ]
    rows

let test_many_to_many_from_sql () =
  (* duplicates on both sides: the planner must auto pre-aggregate *)
  let rows, fb =
    run "SELECT pid, SUM(cost) AS s FROM va JOIN vb USING (pid) GROUP BY pid"
  in
  Alcotest.(check int) "rewritten, no quadratic fallback" 0 fb;
  (* pid 1: 2 left rows x cost 5 = 10; pid 2: 1 x (7 + 9) = 16 *)
  Alcotest.(check rows_t) "m2m sum via SQL" [ [ 1; 10 ]; [ 2; 16 ] ] rows

let test_parse_errors () =
  let expect_err sql =
    match run sql with
    | exception Sql.Parse_error _ -> ()
    | _ -> Alcotest.failf "expected parse error for %S" sql
  in
  expect_err "SELECT";
  expect_err "SELECT x FROM";
  expect_err "SELECT x FROM t LIMIT 3";
  expect_err "SELECT SUM(x) AS s FROM orders";
  expect_err "SELECT x FROM orders WHERE price !";
  expect_err "SELECT cust FROM customers JOIN orders ON zzz = qqq"

let test_unknown_table () =
  (* a catalog miss (raw [Not_found]) must surface as a clean
     [Parse_error] so servers can return an error frame *)
  match run "SELECT x FROM nosuch" with
  | exception Sql.Parse_error msg ->
      Alcotest.(check string) "message" "unknown table: nosuch" msg
  | exception e ->
      Alcotest.failf "expected Parse_error, got %s" (Printexc.to_string e)
  | _ -> Alcotest.fail "expected Parse_error"

let test_vs_plaintext () =
  (* cross-check the SQL path against the plaintext engine *)
  let module P = Orq_plaintext.Ptable in
  let rows, _ =
    run
      "SELECT seg, SUM(price) AS total FROM customers JOIN orders USING \
       (cust) WHERE price < 50 GROUP BY seg"
  in
  let pc = P.of_cols [ ("cust", [| 1; 2; 3; 4 |]); ("seg", [| 1; 2; 1; 2 |]) ] in
  let po =
    P.of_cols
      [
        ("cust", [| 2; 1; 2; 3; 2; 9 |]);
        ("oid", [| 1; 2; 3; 4; 5; 6 |]);
        ("price", [| 10; 20; 30; 40; 50; 60 |]);
      ]
  in
  let j = P.inner_join pc po ~on:[ "cust" ] in
  let j = P.filter j (fun g r -> g "price" r < 50) in
  let g = P.group_by j ~keys:[ "seg" ] ~aggs:[ { P.src = "price"; dst = "total"; fn = P.Sum } ] in
  Alcotest.(check rows_t) "sql = plaintext" (P.rows_sorted g [ "seg"; "total" ]) rows

let suite =
  [
    Alcotest.test_case "select + where" `Quick test_select_where;
    Alcotest.test_case "derived columns (AS)" `Quick test_derived_column;
    Alcotest.test_case "join + group by" `Quick test_join_group;
    Alcotest.test_case "ON join syntax" `Quick test_join_on_syntax;
    Alcotest.test_case "ON join rename" `Quick test_join_on_rename;
    Alcotest.test_case "order by + limit" `Quick test_order_limit;
    Alcotest.test_case "min/max/avg" `Quick test_min_max_avg;
    Alcotest.test_case "many-to-many via SQL" `Quick test_many_to_many_from_sql;
    Alcotest.test_case "parse errors" `Quick test_parse_errors;
    Alcotest.test_case "unknown table" `Quick test_unknown_table;
    Alcotest.test_case "sql vs plaintext" `Quick test_vs_plaintext;
  ]

let () = Alcotest.run "orq_sql" [ ("sql", suite) ]
