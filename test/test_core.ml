(* Tests for the relational core: tables, expressions/filters, TableSort,
   the aggregation network, group-by, DISTINCT, ORDER BY / LIMIT, and every
   variant of the composite join-aggregation operator — validated against
   the plaintext reference engine. *)

open Orq_proto
open Orq_core
open Orq_plaintext

let kinds = Ctx.all_kinds
let vec = Alcotest.(array int)
let rows_t = Alcotest.(list (list int))
let for_all_kinds f = List.iter (fun k -> f (Ctx.create ~seed:51 k)) kinds
let hm () = Ctx.create ~seed:77 Ctx.Sh_hm

(* ---------------- tables + reveal ---------------- *)

let mk_customers ctx =
  Table.create ctx "customers"
    [
      ("CustKey", 8, [| 1; 2; 3; 4; 5 |]);
      ("Segment", 4, [| 1; 2; 1; 3; 1 |]);
      ("Balance", 16, [| 100; 250; 50; 999; 0 |]);
    ]

let test_create_peek () =
  for_all_kinds (fun ctx ->
      let t = mk_customers ctx in
      let cols, valid = Table.peek t in
      Alcotest.(check vec) "col" [| 1; 2; 3; 4; 5 |] (List.assoc "CustKey" cols);
      Alcotest.(check vec) "valid" [| 1; 1; 1; 1; 1 |] valid)

let test_reveal_masks_invalid () =
  for_all_kinds (fun ctx ->
      let t = mk_customers ctx in
      let t = Dataflow.filter t Expr.(col "Segment" ==. const 1) in
      let out = Table.reveal t in
      let keys = List.assoc "CustKey" out in
      Array.sort compare keys;
      Alcotest.(check vec) "only matching rows revealed" [| 1; 3; 5 |] keys;
      (* physical size unchanged before reveal: obliviousness *)
      Alcotest.(check int) "physical rows" 5 (Table.nrows t))

(* ---------------- expressions / filters ---------------- *)

let test_filter_exprs () =
  for_all_kinds (fun ctx ->
      let t = mk_customers ctx in
      let t' =
        Dataflow.filter t
          Expr.(col "Balance" >=. const 100 &&. (col "Segment" <>. const 3))
      in
      Alcotest.(check rows_t) "compound filter"
        [ [ 1 ]; [ 2 ] ]
        (Table.valid_rows_sorted t' [ "CustKey" ]))

let test_filter_or_not () =
  for_all_kinds (fun ctx ->
      let t = mk_customers ctx in
      let t' =
        Dataflow.filter t
          Expr.(col "Segment" ==. const 3 ||. not_ (col "Balance" >. const 0))
      in
      Alcotest.(check rows_t) "or/not" [ [ 4 ]; [ 5 ] ]
        (Table.valid_rows_sorted t' [ "CustKey" ]))

let test_map_arith () =
  for_all_kinds (fun ctx ->
      let t =
        Table.create ctx "li"
          [ ("Price", 16, [| 1000; 200 |]); ("Disc", 8, [| 10; 25 |]) ]
      in
      (* Revenue = Price * (100 - Disc) / 100, the Q3 expression *)
      let t =
        Dataflow.map t ~dst:"Revenue"
          Expr.(Div_pub (col "Price" *! (const 100 -! col "Disc"), 100))
      in
      Alcotest.(check rows_t) "revenue" [ [ 150 ]; [ 900 ] ]
        (Table.valid_rows_sorted t [ "Revenue" ]))

let test_private_division_expr () =
  let ctx = hm () in
  let t =
    Table.create ctx "d" [ ("A", 16, [| 100; 81 |]); ("B", 8, [| 7; 9 |]) ]
  in
  let t = Dataflow.map t ~dst:"Q" Expr.(col "A" /! col "B") in
  Alcotest.(check rows_t) "private division" [ [ 9 ]; [ 14 ] ]
    (Table.valid_rows_sorted t [ "Q" ])

(* ---------------- TableSort ---------------- *)

let test_tablesort_multikey () =
  for_all_kinds (fun ctx ->
      let t =
        Table.create ctx "s"
          [
            ("A", 8, [| 2; 1; 2; 1; 1 |]);
            ("B", 8, [| 5; 9; 3; 9; 1 |]);
            ("C", 8, [| 0; 1; 2; 3; 4 |]);
          ]
      in
      let t = Tablesort.sort t [ ("A", Tablesort.Asc); ("B", Tablesort.Desc) ] in
      let cols, _ = Table.peek t in
      Alcotest.(check vec) "A" [| 1; 1; 1; 2; 2 |] (List.assoc "A" cols);
      Alcotest.(check vec) "B desc in group" [| 9; 9; 1; 5; 3 |]
        (List.assoc "B" cols);
      (* stability: the two (1, 9) rows keep original order (C = 1 then 3) *)
      Alcotest.(check vec) "C moved consistently" [| 1; 3; 4; 0; 2 |]
        (List.assoc "C" cols))

(* ---------------- AggNet ---------------- *)

let test_aggnet_sum_copy () =
  for_all_kinds (fun ctx ->
      (* sorted keys: groups (1, 1), (2), (3, 3, 3) -- plus valid column 1s *)
      let keys =
        [
          (Share.public ctx Share.Bool 6 1, 1);
          (Share.share ctx Share.Bool [| 1; 1; 2; 3; 3; 3 |], 4);
        ]
      in
      let vals = Share.share ctx Share.Arith [| 10; 20; 5; 1; 2; 3 |] in
      let tags = Share.share ctx Share.Bool [| 7; 0; 9; 4; 0; 0 |] in
      match
        Aggnet.run ctx ~keys
          [
            { Aggnet.col = vals; func = Aggnet.Sum; keys = Aggnet.Group; width = 16 };
            { Aggnet.col = tags; func = Aggnet.Copy; keys = Aggnet.Group; width = 8 };
          ]
      with
      | [ sums; copies ] ->
          let s = Share.reconstruct sums in
          (* group totals land in the last row of each group *)
          Alcotest.(check int) "group1 total" 30 s.(1);
          Alcotest.(check int) "group2 total" 5 s.(2);
          Alcotest.(check int) "group3 total" 6 s.(5);
          Alcotest.(check vec) "copy propagates first row down"
            [| 7; 7; 9; 4; 4; 4 |] (Share.reconstruct copies)
      | _ -> Alcotest.fail "arity")

let test_aggnet_minmax () =
  for_all_kinds (fun ctx ->
      let keys =
        [
          (Share.public ctx Share.Bool 5 1, 1);
          (Share.share ctx Share.Bool [| 1; 1; 1; 2; 2 |], 4);
        ]
      in
      let vals = Share.share ctx Share.Bool [| 9; 2; 5; 7; 8 |] in
      match
        Aggnet.run ctx ~keys
          [
            { Aggnet.col = vals; func = Aggnet.Min 8; keys = Aggnet.Group; width = 8 };
            { Aggnet.col = vals; func = Aggnet.Max 8; keys = Aggnet.Group; width = 8 };
          ]
      with
      | [ mins; maxs ] ->
          Alcotest.(check int) "min" 2 (Share.reconstruct mins).(2);
          Alcotest.(check int) "max" 9 (Share.reconstruct maxs).(2);
          Alcotest.(check int) "min g2" 7 (Share.reconstruct mins).(4);
          Alcotest.(check int) "max g2" 8 (Share.reconstruct maxs).(4)
      | _ -> Alcotest.fail "arity")

let test_aggnet_non_pow2_padding () =
  (* 6 rows pad to 8; padded rows must not contaminate real groups *)
  let ctx = hm () in
  let keys =
    [
      (Share.public ctx Share.Bool 6 1, 1);
      (Share.share ctx Share.Bool [| 0; 0; 0; 0; 0; 0 |], 4);
    ]
  in
  (* all six rows in ONE group with key 0 (same as padding!) but valid=1 *)
  let vals = Share.share ctx Share.Arith [| 1; 1; 1; 1; 1; 1 |] in
  match
    Aggnet.run ctx ~keys
      [ { Aggnet.col = vals; func = Aggnet.Sum; keys = Aggnet.Group; width = 8 } ]
  with
  | [ sums ] ->
      Alcotest.(check int) "sum unharmed by padding" 6
        (Share.reconstruct sums).(5)
  | _ -> Alcotest.fail "arity"

(* ---------------- group-by / distinct / order-by ---------------- *)

let test_group_by () =
  for_all_kinds (fun ctx ->
      let t =
        Table.create ctx "sales"
          [
            ("Region", 4, [| 1; 2; 1; 2; 1; 3 |]);
            ("Amount", 10, [| 10; 20; 30; 40; 50; 60 |]);
          ]
      in
      let t' =
        Dataflow.aggregate t ~keys:[ "Region" ]
          ~aggs:
            [
              { Dataflow.src = "Amount"; dst = "Total"; fn = Dataflow.Sum };
              { Dataflow.src = "Amount"; dst = "N"; fn = Dataflow.Count };
              { Dataflow.src = "Amount"; dst = "Lo"; fn = Dataflow.Min };
              { Dataflow.src = "Amount"; dst = "Hi"; fn = Dataflow.Max };
            ]
      in
      Alcotest.(check rows_t) "group-by"
        [ [ 1; 90; 3; 10; 50 ]; [ 2; 60; 2; 20; 40 ]; [ 3; 60; 1; 60; 60 ] ]
        (Table.valid_rows_sorted t' [ "Region"; "Total"; "N"; "Lo"; "Hi" ]))

let test_group_by_avg () =
  let ctx = hm () in
  let t =
    Table.create ctx "m"
      [ ("G", 4, [| 1; 1; 2 |]); ("X", 8, [| 10; 21; 5 |]) ]
  in
  let t' =
    Dataflow.aggregate t ~keys:[ "G" ]
      ~aggs:[ { Dataflow.src = "X"; dst = "A"; fn = Dataflow.Avg } ]
  in
  Alcotest.(check rows_t) "avg" [ [ 1; 15 ]; [ 2; 5 ] ]
    (Table.valid_rows_sorted t' [ "G"; "A" ])

let test_group_by_respects_filter () =
  let ctx = hm () in
  let t =
    Table.create ctx "s"
      [ ("G", 4, [| 1; 1; 1; 2 |]); ("X", 8, [| 5; 7; 100; 3 |]) ]
  in
  let t = Dataflow.filter t Expr.(col "X" <. const 50) in
  let t' =
    Dataflow.aggregate t ~keys:[ "G" ]
      ~aggs:[ { Dataflow.src = "X"; dst = "S"; fn = Dataflow.Sum } ]
  in
  Alcotest.(check rows_t) "invalid rows excluded from groups"
    [ [ 1; 12 ]; [ 2; 3 ] ]
    (Table.valid_rows_sorted t' [ "G"; "S" ])

let test_distinct () =
  for_all_kinds (fun ctx ->
      let t =
        Table.create ctx "d" [ ("X", 8, [| 3; 1; 3; 2; 1; 3 |]) ]
      in
      let t' = Dataflow.distinct t [ "X" ] in
      Alcotest.(check rows_t) "distinct" [ [ 1 ]; [ 2 ]; [ 3 ] ]
        (Table.valid_rows_sorted t' [ "X" ]))

let test_order_by_limit () =
  for_all_kinds (fun ctx ->
      let t =
        Table.create ctx "o"
          [ ("K", 8, [| 5; 9; 1; 7; 3 |]); ("V", 8, [| 50; 90; 10; 70; 30 |]) ]
      in
      let t = Dataflow.filter t Expr.(col "K" <>. const 7) in
      let t' = Dataflow.limit (Dataflow.order_by t [ ("K", Dataflow.Desc) ]) 2 in
      let cols, valid = Table.peek t' in
      Alcotest.(check int) "limit size" 2 (Table.nrows t');
      Alcotest.(check vec) "top-2 keys desc" [| 9; 5 |] (List.assoc "K" cols);
      Alcotest.(check vec) "values follow" [| 90; 50 |] (List.assoc "V" cols);
      Alcotest.(check vec) "all valid" [| 1; 1 |] valid)

(* ---------------- joins ---------------- *)

let customers_orders ctx =
  let c =
    Table.create ctx "C"
      [ ("CustKey", 8, [| 1; 2; 3; 4 |]); ("Nation", 4, [| 10; 20; 10; 30 |]) ]
  in
  let o =
    Table.create ctx "O"
      [
        ("CustKey", 8, [| 2; 1; 2; 5; 2; 3 |]);
        ("Price", 10, [| 100; 50; 30; 999; 20; 70 |]);
      ]
  in
  (c, o)

let p_customers_orders () =
  let c =
    Ptable.of_cols [ ("CustKey", [| 1; 2; 3; 4 |]); ("Nation", [| 10; 20; 10; 30 |]) ]
  in
  let o =
    Ptable.of_cols
      [ ("CustKey", [| 2; 1; 2; 5; 2; 3 |]); ("Price", [| 100; 50; 30; 999; 20; 70 |]) ]
  in
  (c, o)

let test_inner_join () =
  for_all_kinds (fun ctx ->
      let c, o = customers_orders ctx in
      let j = Dataflow.inner_join c o ~on:[ "CustKey" ] ~copy:[ "Nation" ] in
      let pc, po = p_customers_orders () in
      let pj = Ptable.inner_join pc po ~on:[ "CustKey" ] in
      Alcotest.(check rows_t) "inner join vs plaintext"
        (Ptable.rows_sorted pj [ "CustKey"; "Nation"; "Price" ])
        (Table.valid_rows_sorted j [ "CustKey"; "Nation"; "Price" ]))

let test_inner_join_trim () =
  for_all_kinds (fun ctx ->
      let c, o = customers_orders ctx in
      let j =
        Dataflow.inner_join ~trim:`Always c o ~on:[ "CustKey" ]
          ~copy:[ "Nation" ]
      in
      Alcotest.(check int) "trimmed to |R|" 6 (Table.nrows j);
      let pc, po = p_customers_orders () in
      let pj = Ptable.inner_join pc po ~on:[ "CustKey" ] in
      Alcotest.(check rows_t) "trim preserves result"
        (Ptable.rows_sorted pj [ "CustKey"; "Nation"; "Price" ])
        (Table.valid_rows_sorted j [ "CustKey"; "Nation"; "Price" ]))

let test_join_respects_validity () =
  let ctx = hm () in
  let c, o = customers_orders ctx in
  (* filter out customer 2 before joining: its orders must disappear *)
  let c = Dataflow.filter c Expr.(col "CustKey" <>. const 2) in
  let j = Dataflow.inner_join c o ~on:[ "CustKey" ] ~copy:[ "Nation" ] in
  Alcotest.(check rows_t) "invalidated left rows do not match"
    [ [ 1; 50 ]; [ 3; 70 ] ]
    (Table.valid_rows_sorted j [ "CustKey"; "Price" ])

let test_left_outer_join () =
  let ctx = hm () in
  let c, o = customers_orders ctx in
  let j = Dataflow.left_outer_join c o ~on:[ "CustKey" ] ~copy:[ "Nation" ] in
  (* the paper's left outer (Appendix C.1) is "inner join plus ALL rows
     from the left": every L row survives, with NULL R-columns *)
  let pc, po = p_customers_orders () in
  let pj = Ptable.inner_join pc po ~on:[ "CustKey" ] in
  let l_rows =
    Ptable.map pc ~dst:"Price" (fun _ _ -> 0)
  in
  let expected =
    List.sort compare
      (Ptable.rows_sorted pj [ "CustKey"; "Nation"; "Price" ]
      @ Ptable.rows_sorted l_rows [ "CustKey"; "Nation"; "Price" ])
  in
  Alcotest.(check rows_t) "left outer (paper semantics)" expected
    (Table.valid_rows_sorted j [ "CustKey"; "Nation"; "Price" ])

let test_right_outer_join () =
  let ctx = hm () in
  let c, o = customers_orders ctx in
  let j = Dataflow.right_outer_join c o ~on:[ "CustKey" ] ~copy:[ "Nation" ] in
  (* all 6 order rows survive; order with CustKey 5 has Nation NULL(0) *)
  Alcotest.(check rows_t) "right outer"
    [
      [ 1; 10; 50 ];
      [ 2; 20; 20 ];
      [ 2; 20; 30 ];
      [ 2; 20; 100 ];
      [ 3; 10; 70 ];
      [ 5; 0; 999 ];
    ]
    (Table.valid_rows_sorted j [ "CustKey"; "Nation"; "Price" ])

let test_full_outer_join () =
  let ctx = hm () in
  let c, o = customers_orders ctx in
  let j = Dataflow.full_outer_join c o ~on:[ "CustKey" ] ~copy:[ "Nation" ] in
  (* right rows + unmatched left (CustKey 4) with NULL price; matched left
     rows appear too (full outer keeps everything: n + m rows, but matched
     L rows carry NULL data columns from R) *)
  Alcotest.(check int) "physical size n+m" 10 (Table.nrows j);
  let rows = Table.valid_rows_sorted j [ "CustKey" ] in
  Alcotest.(check rows_t) "all keys present"
    [ [ 1 ]; [ 1 ]; [ 2 ]; [ 2 ]; [ 2 ]; [ 2 ]; [ 3 ]; [ 3 ]; [ 4 ]; [ 5 ] ]
    rows

let test_semi_join () =
  for_all_kinds (fun ctx ->
      let c, o = customers_orders ctx in
      let s = Dataflow.semi_join c o ~on:[ "CustKey" ] in
      Alcotest.(check rows_t) "semi join"
        [ [ 1; 10 ]; [ 2; 20 ]; [ 3; 10 ] ]
        (Table.valid_rows_sorted s [ "CustKey"; "Nation" ]))

let test_anti_join () =
  for_all_kinds (fun ctx ->
      let c, o = customers_orders ctx in
      let a = Dataflow.anti_join c o ~on:[ "CustKey" ] in
      Alcotest.(check rows_t) "anti join" [ [ 4; 30 ] ]
        (Table.valid_rows_sorted a [ "CustKey"; "Nation" ]))

let test_semi_join_duplicates_both_sides () =
  let ctx = hm () in
  let l =
    Table.create ctx "L" [ ("K", 8, [| 1; 1; 2; 3; 3 |]); ("V", 8, [| 1; 2; 3; 4; 5 |]) ]
  in
  let r = Table.create ctx "R" [ ("K", 8, [| 1; 1; 3; 9 |]) ] in
  let s = Dataflow.semi_join l r ~on:[ "K" ] in
  Alcotest.(check rows_t) "semi with dups"
    [ [ 1; 1 ]; [ 1; 2 ]; [ 3; 4 ]; [ 3; 5 ] ]
    (Table.valid_rows_sorted s [ "K"; "V" ]);
  let a = Dataflow.anti_join l r ~on:[ "K" ] in
  Alcotest.(check rows_t) "anti with dups" [ [ 2; 3 ] ]
    (Table.valid_rows_sorted a [ "K"; "V" ])

let test_join_with_aggregation () =
  (* the fused join-aggregation: sum of order prices per customer, computed
     inside the join's control flow *)
  let ctx = hm () in
  let c, o = customers_orders ctx in
  let j =
    Dataflow.inner_join c o ~on:[ "CustKey" ]
      ~aggs:
        [
          {
            Dataflow.a_src = "Price";
            a_dst = "Total";
            a_func = Aggnet.Sum;
            a_width = 16;
          };
        ]
  in
  (* the group total lands in the last row of each group; aggregate rows
     are picked with a group-by afterwards in full queries. Here check via
     max per key *)
  let t' =
    Dataflow.aggregate j ~keys:[ "CustKey" ]
      ~aggs:[ { Dataflow.src = "Total"; dst = "T"; fn = Dataflow.Max } ]
  in
  Alcotest.(check rows_t) "join-fused sums"
    [ [ 1; 50 ]; [ 2; 150 ]; [ 3; 70 ] ]
    (Table.valid_rows_sorted t' [ "CustKey"; "T" ])

let test_many_to_many_preaggregation () =
  (* Section 3.6: COUNT over a many-to-many join via pre-aggregation of
     multiplicities and post-multiplication *)
  let ctx = hm () in
  let l = Table.create ctx "L" [ ("K", 8, [| 1; 1; 2; 2; 2 |]) ] in
  let r = Table.create ctx "R" [ ("K", 8, [| 1; 2; 2; 7 |]); ("Rid", 8, [| 1; 2; 3; 4 |]) ] in
  (* pre-aggregate: multiplicity of each key in L *)
  let lm =
    Dataflow.aggregate l ~keys:[ "K" ]
      ~aggs:[ { Dataflow.src = "K"; dst = "M"; fn = Dataflow.Count } ]
  in
  let j = Dataflow.inner_join lm r ~on:[ "K" ] ~copy:[ "M" ] in
  let total =
    Dataflow.aggregate
      (Dataflow.map j ~dst:"One" Expr.(const 1))
      ~keys:[ "One" ]
      ~aggs:[ { Dataflow.src = "M"; dst = "Cnt"; fn = Dataflow.Sum } ]
  in
  (* |L x_K R| = 1*1 + 2*3... keys: k=1: 2 L-rows x 1 R-row = 2;
     k=2: 3 L x 2 R = 6; total 8 *)
  Alcotest.(check rows_t) "many-to-many count" [ [ 8 ] ]
    (Table.valid_rows_sorted total [ "Cnt" ])

let test_concat_tables () =
  let ctx = hm () in
  let a = Table.create ctx "A" [ ("X", 8, [| 1; 2 |]) ] in
  let b = Table.create ctx "A" [ ("X", 8, [| 3 |]) ] in
  let u = Dataflow.concat_tables a b in
  Alcotest.(check rows_t) "union all" [ [ 1 ]; [ 2 ]; [ 3 ] ]
    (Table.valid_rows_sorted u [ "X" ])

(* ---------------- qcheck: joins vs plaintext ---------------- *)

let qcheck_join_vs_plaintext =
  QCheck.Test.make ~name:"random PK-FK joins match plaintext" ~count:12
    QCheck.(pair (int_bound 10000) (int_bound 3))
    (fun (seed, _) ->
      let prg = Orq_util.Prg.create (seed + 101) in
      let nl = 1 + Orq_util.Prg.int_below prg 8 in
      let nr = 1 + Orq_util.Prg.int_below prg 12 in
      (* unique left keys, arbitrary right keys *)
      let lk =
        Array.map (fun i -> i + 1) (Orq_shuffle.Localperm.random prg nl)
      in
      let lv = Array.init nl (fun _ -> Orq_util.Prg.int_below prg 50) in
      let rk = Array.init nr (fun _ -> 1 + Orq_util.Prg.int_below prg (nl + 3)) in
      let rv = Array.init nr (fun _ -> Orq_util.Prg.int_below prg 50) in
      let ctx = Ctx.create ~seed:(seed + 7) Ctx.Sh_hm in
      let l =
        Table.create ctx "L" [ ("K", 8, lk); ("LV", 8, lv) ]
      in
      let r = Table.create ctx "R" [ ("K", 8, rk); ("RV", 8, rv) ] in
      let j = Dataflow.inner_join l r ~on:[ "K" ] ~copy:[ "LV" ] in
      let pl = Ptable.of_cols [ ("K", lk); ("LV", lv) ] in
      let pr = Ptable.of_cols [ ("K", rk); ("RV", rv) ] in
      let pj = Ptable.inner_join pl pr ~on:[ "K" ] in
      Table.valid_rows_sorted j [ "K"; "LV"; "RV" ]
      = Ptable.rows_sorted pj [ "K"; "LV"; "RV" ])

let qcheck_groupby_vs_plaintext =
  QCheck.Test.make ~name:"random group-bys match plaintext" ~count:12
    QCheck.(int_bound 10000)
    (fun seed ->
      let prg = Orq_util.Prg.create (seed + 303) in
      let n = 1 + Orq_util.Prg.int_below prg 15 in
      let g = Array.init n (fun _ -> Orq_util.Prg.int_below prg 4) in
      let x = Array.init n (fun _ -> Orq_util.Prg.int_below prg 30) in
      let ctx = Ctx.create ~seed Ctx.Sh_hm in
      let t = Table.create ctx "T" [ ("G", 4, g); ("X", 8, x) ] in
      let t' =
        Dataflow.aggregate t ~keys:[ "G" ]
          ~aggs:
            [
              { Dataflow.src = "X"; dst = "S"; fn = Dataflow.Sum };
              { Dataflow.src = "X"; dst = "C"; fn = Dataflow.Count };
            ]
      in
      let p = Ptable.of_cols [ ("G", g); ("X", x) ] in
      let pg =
        Ptable.group_by p ~keys:[ "G" ]
          ~aggs:
            [
              { Ptable.src = "X"; dst = "S"; fn = Ptable.Sum };
              { Ptable.src = "X"; dst = "C"; fn = Ptable.Count };
            ]
      in
      Table.valid_rows_sorted t' [ "G"; "S"; "C" ]
      = Ptable.rows_sorted pg [ "G"; "S"; "C" ])

(* ---------------- trimming heuristic ---------------- *)

let test_trim_heuristic_values () =
  (* the C.3 table: for 3PC and omega = 128, trim while alpha is below
     lg(L) lg(omega) / 9 — e.g. L = 10k -> threshold about 10.3 *)
  let ctx = Ctx.create Ctx.Sh_hm in
  Alcotest.(check bool) "L=10k, R=100k trims" true
    (Joinagg.should_trim ctx ~left_n:10_000 ~right_m:100_000);
  Alcotest.(check bool) "L=10k, R=110k does not" false
    (Joinagg.should_trim ctx ~left_n:10_000 ~right_m:110_000);
  Alcotest.(check bool) "L=100, R=510 trims" true
    (Joinagg.should_trim ctx ~left_n:100 ~right_m:510);
  Alcotest.(check bool) "L=100, R=600 does not" false
    (Joinagg.should_trim ctx ~left_n:100 ~right_m:600)

(* ---------------- theta join ---------------- *)

let test_theta_join () =
  let ctx = hm () in
  let l =
    Table.create ctx "L"
      [ ("k", 8, [| 1; 2; 3 |]); ("t0", 8, [| 10; 10; 10 |]) ]
  in
  let r =
    Table.create ctx "R"
      [ ("k", 8, [| 1; 1; 2; 3 |]); ("t1", 8, [| 5; 15; 20; 7 |]) ]
  in
  (* L.k = R.k AND R.t1 >= L.t0 : conjunctive theta with one equality *)
  let j =
    Dataflow.theta_join l r ~on:[ "k" ] ~copy:[ "t0" ]
      ~theta:Expr.(col "t1" >=. col "t0")
  in
  Alcotest.(check rows_t) "theta join" [ [ 1; 15 ]; [ 2; 20 ] ]
    (Table.valid_rows_sorted j [ "k"; "t1" ])

(* ---------------- signedness ---------------- *)

let test_signed_expressions () =
  let ctx = hm () in
  let t =
    Table.create ctx "t" [ ("a", 8, [| 3; 10; 7 |]); ("b", 8, [| 9; 2; 7 |]) ]
  in
  (* (a - b) can be negative; signed comparison against a constant *)
  let t' = Dataflow.filter t Expr.(col "a" -! col "b" <. const 0) in
  Alcotest.(check rows_t) "negative difference detected" [ [ 3; 9 ] ]
    (Table.valid_rows_sorted t' [ "a"; "b" ]);
  (* signed sums aggregate correctly through group-by *)
  let t2 =
    Table.create ctx "t2"
      [ ("g", 2, [| 1; 1; 1 |]); ("a", 8, [| 3; 10; 7 |]); ("b", 8, [| 9; 2; 7 |]) ]
  in
  let t2 = Dataflow.map t2 ~dst:"d" Expr.(col "a" -! col "b") in
  let agg =
    Dataflow.aggregate t2 ~keys:[ "g" ]
      ~aggs:[ { Dataflow.src = "d"; dst = "s"; fn = Dataflow.Sum } ]
  in
  let w = Table.width agg "s" in
  Alcotest.(check rows_t) "signed group sum (two's complement)"
    [ [ 1; 2 land Orq_util.Ring.mask w ] ]
    (Table.valid_rows_sorted agg [ "g"; "s" ])

let test_order_by_signed () =
  let ctx = hm () in
  let t =
    Table.create ctx "t" [ ("a", 8, [| 1; 5; 3 |]); ("b", 8, [| 4; 1; 9 |]) ]
  in
  let t = Dataflow.map t ~dst:"d" Expr.(col "a" -! col "b") in
  (* d = -3, 4, -6 : signed order must be -6 < -3 < 4 *)
  let t = Dataflow.order_by t [ ("d", Dataflow.Asc) ] in
  let cols, _ = Table.peek t in
  Alcotest.(check vec) "signed sort order" [| 3; 1; 5 |] (List.assoc "a" cols)

(* ---------------- global aggregates with validity ---------------- *)

let test_global_minmax_validity () =
  let ctx = hm () in
  let t = Table.create ctx "t" [ ("x", 8, [| 50; 1; 99; 30 |]) ] in
  let t = Dataflow.filter t Expr.(col "x" >. const 1 &&. (col "x" <. const 99)) in
  let g =
    Dataflow.global_aggregate t
      ~aggs:
        [
          { Dataflow.src = "x"; dst = "mn"; fn = Dataflow.Min };
          { Dataflow.src = "x"; dst = "mx"; fn = Dataflow.Max };
          { Dataflow.src = "x"; dst = "avg"; fn = Dataflow.Avg };
        ]
  in
  Alcotest.(check rows_t) "masked extrema + avg" [ [ 30; 50; 40 ] ]
    (Table.valid_rows_sorted g [ "mn"; "mx"; "avg" ])

(* ---------------- semi/anti partition property ---------------- *)

let qcheck_semi_anti_partition =
  QCheck.Test.make ~name:"semi + anti partition the left table" ~count:10
    QCheck.(int_bound 10_000)
    (fun seed ->
      let prg = Orq_util.Prg.create (seed + 17) in
      let nl = 2 + Orq_util.Prg.int_below prg 10 in
      let nr = 1 + Orq_util.Prg.int_below prg 10 in
      let lk = Array.init nl (fun _ -> Orq_util.Prg.int_below prg 6) in
      let lid = Array.init nl (fun i -> i) in
      let rk = Array.init nr (fun _ -> Orq_util.Prg.int_below prg 6) in
      let ctx = Ctx.create ~seed Ctx.Sh_hm in
      let l = Table.create ctx "L" [ ("k", 4, lk); ("id", 8, lid) ] in
      let r = Table.create ctx "R" [ ("k", 4, rk) ] in
      let s = Dataflow.semi_join l r ~on:[ "k" ] in
      let a = Dataflow.anti_join l r ~on:[ "k" ] in
      let rows t = Table.valid_rows_sorted t [ "k"; "id" ] in
      List.sort compare (rows s @ rows a)
      = Table.valid_rows_sorted l [ "k"; "id" ])

(* ---------------- custom aggregations (Appendix C) ---------------- *)

let test_custom_aggregation () =
  let ctx = hm () in
  let t =
    Table.create ctx "t"
      [ ("g", 4, [| 1; 1; 2; 2; 2 |]); ("x", 8, [| 0b0011; 0b0101; 0b1000; 0b0010; 0b0001 |]) ]
  in
  (* a user-defined self-decomposable function: bitwise OR of the group *)
  let bit_or ctx a b = Orq_proto.Mpc.bor ~width:8 ctx a b in
  let r =
    Dataflow.aggregate t ~keys:[ "g" ]
      ~aggs:[ { Dataflow.src = "x"; dst = "bits"; fn = Dataflow.Custom bit_or } ]
  in
  Alcotest.(check rows_t) "group bitwise OR"
    [ [ 1; 0b0111 ]; [ 2; 0b1011 ] ]
    (Table.valid_rows_sorted r [ "g"; "bits" ]);
  (* the paper's Appendix C example: an oblivious group product *)
  let prod ctx a b =
    let aa = Orq_circuits.Convert.b2a ~w:8 ctx a in
    let bb = Orq_circuits.Convert.b2a ~w:8 ctx b in
    Orq_circuits.Convert.a2b ~w:16 ctx (Orq_proto.Mpc.mul ~width:16 ctx aa bb)
  in
  let t2 =
    Table.create ctx "t2" [ ("g", 4, [| 1; 1; 1; 2 |]); ("x", 8, [| 2; 3; 4; 7 |]) ]
  in
  let r2 =
    Dataflow.aggregate t2 ~keys:[ "g" ]
      ~aggs:[ { Dataflow.src = "x"; dst = "p"; fn = Dataflow.Custom prod } ]
  in
  Alcotest.(check rows_t) "group product (paper's custom example)"
    [ [ 1; 24 ]; [ 2; 7 ] ]
    (Table.valid_rows_sorted r2 [ "g"; "p" ])

(* ---------------- algebraic properties ---------------- *)

let qcheck_tablesort_idempotent =
  QCheck.Test.make ~name:"TableSort is idempotent" ~count:8
    QCheck.(int_bound 10_000)
    (fun seed ->
      let prg = Orq_util.Prg.create (seed + 211) in
      let n = 2 + Orq_util.Prg.int_below prg 12 in
      let a = Array.init n (fun _ -> Orq_util.Prg.int_below prg 8) in
      let b = Array.init n (fun _ -> Orq_util.Prg.int_below prg 8) in
      let ctx = Ctx.create ~seed Ctx.Sh_hm in
      let t = Table.create ctx "t" [ ("a", 4, a); ("b", 4, b) ] in
      let once = Tablesort.sort t [ ("a", Tablesort.Asc); ("b", Tablesort.Desc) ] in
      let twice =
        Tablesort.sort once [ ("a", Tablesort.Asc); ("b", Tablesort.Desc) ]
      in
      fst (Table.peek once) = fst (Table.peek twice))

let qcheck_join_output_bound =
  QCheck.Test.make ~name:"trimmed join output bounded by |R|" ~count:8
    QCheck.(int_bound 10_000)
    (fun seed ->
      let prg = Orq_util.Prg.create (seed + 401) in
      let nl = 1 + Orq_util.Prg.int_below prg 8 in
      let nr = 1 + Orq_util.Prg.int_below prg 12 in
      let lk = Array.map (fun i -> i + 1) (Orq_shuffle.Localperm.random prg nl) in
      let rk = Array.init nr (fun _ -> 1 + Orq_util.Prg.int_below prg (nl + 2)) in
      let ctx = Ctx.create ~seed Ctx.Sh_hm in
      let l = Table.create ctx "L" [ ("k", 8, lk) ] in
      let r = Table.create ctx "R" [ ("k", 8, rk); ("rv", 8, rk) ] in
      let j = Dataflow.inner_join ~trim:`Always l r ~on:[ "k" ] in
      Table.nrows j = nr
      && List.length (Table.valid_rows_sorted j [ "k" ]) <= nr)

(* ---------------- unique-key (PSI-style) join ---------------- *)

let test_join_unique () =
  for_all_kinds (fun ctx ->
      let l =
        Table.create ctx "L"
          [ ("k", 8, [| 1; 2; 3; 4 |]); ("lv", 8, [| 10; 20; 30; 40 |]) ]
      in
      let r =
        Table.create ctx "R"
          [ ("k", 8, [| 2; 4; 5 |]); ("rv", 8, [| 7; 8; 9 |]) ]
      in
      let j = Dataflow.inner_join_unique l r ~on:[ "k" ] ~copy:[ "lv" ] in
      Alcotest.(check int) "bounded by min(n,m)" 3 (Table.nrows j);
      Alcotest.(check rows_t) "psi join result"
        [ [ 2; 20; 7 ]; [ 4; 40; 8 ] ]
        (Table.valid_rows_sorted j [ "k"; "lv"; "rv" ]))

let test_join_unique_cheaper () =
  (* skipping the aggregation network must save bytes vs the general
     sort-based join — pin the physical operator so the cost-based
     dispatch doesn't swap in the (cheaper still) linear join *)
  let saved = Joincost.mode () in
  Joincost.set_mode (Joincost.Force Joincost.Sort);
  Fun.protect ~finally:(fun () -> Joincost.set_mode saved) @@ fun () ->
  let run f =
    let ctx = hm () in
    let l = Table.create ctx "L" [ ("k", 16, Array.init 64 (fun i -> i)) ] in
    let r =
      Table.create ctx "R"
        [ ("k", 16, Array.init 64 (fun i -> i + 32)); ("rv", 8, Array.make 64 5) ]
    in
    let before = Orq_net.Comm.snapshot ctx.Ctx.comm in
    ignore (f l r);
    (Orq_net.Comm.since ctx.Ctx.comm before).Orq_net.Comm.t_bits
  in
  let unique = run (fun l r -> Dataflow.inner_join_unique l r ~on:[ "k" ]) in
  let general = run (fun l r -> Dataflow.inner_join ~trim:`Always l r ~on:[ "k" ]) in
  Alcotest.(check bool) "unique join cheaper" true (unique < general)

let test_join_unique_respects_validity () =
  let ctx = hm () in
  let l = Table.create ctx "L" [ ("k", 8, [| 1; 2 |]); ("lv", 8, [| 5; 6 |]) ] in
  let l = Dataflow.filter l Expr.(col "k" <>. const 1) in
  let r = Table.create ctx "R" [ ("k", 8, [| 1; 2 |]); ("rv", 8, [| 8; 9 |]) ] in
  let j = Dataflow.inner_join_unique l r ~on:[ "k" ] ~copy:[ "lv" ] in
  Alcotest.(check rows_t) "filtered key drops" [ [ 2; 6; 9 ] ]
    (Table.valid_rows_sorted j [ "k"; "lv"; "rv" ])

(* ---------------- count distinct ---------------- *)

let test_count_distinct () =
  let ctx = hm () in
  let t =
    Table.create ctx "t"
      [ ("g", 4, [| 1; 1; 1; 2; 2 |]); ("x", 8, [| 5; 5; 7; 5; 5 |]) ]
  in
  let r = Dataflow.count_distinct t ~keys:[ "g" ] ~over:[ "x" ] ~dst:"nd" in
  Alcotest.(check rows_t) "count distinct" [ [ 1; 2 ]; [ 2; 1 ] ]
    (Table.valid_rows_sorted r [ "g"; "nd" ])

(* ---------------- data-owner padding ---------------- *)

let test_pad_rows () =
  let ctx = hm () in
  let t = Table.create ctx "t" [ ("x", 8, [| 3; 1 |]) ] in
  let t = Table.pad_rows t 3 in
  Alcotest.(check int) "physical rows grow" 5 (Table.nrows t);
  Alcotest.(check rows_t) "dummies stay invisible" [ [ 1 ]; [ 3 ] ]
    (Table.valid_rows_sorted t [ "x" ]);
  (* padded rows survive a full operator pipeline without appearing *)
  let agg =
    Dataflow.aggregate t ~keys:[ "x" ]
      ~aggs:[ { Dataflow.src = "x"; dst = "c"; fn = Dataflow.Count } ]
  in
  Alcotest.(check rows_t) "padding excluded from groups"
    [ [ 1; 1 ]; [ 3; 1 ] ]
    (Table.valid_rows_sorted agg [ "x"; "c" ])

(* ---------------- limit edge cases ---------------- *)

let test_limit_beyond_valid () =
  let ctx = hm () in
  let t = Table.create ctx "t" [ ("x", 8, [| 5; 2; 9 |]) ] in
  let t = Dataflow.filter t Expr.(col "x" >. const 4) in
  let t = Dataflow.limit (Dataflow.order_by t [ ("x", Dataflow.Asc) ]) 3 in
  (* only 2 valid rows exist; the third slot must stay invalid *)
  Alcotest.(check rows_t) "padding row stays invalid" [ [ 5 ]; [ 9 ] ]
    (Table.valid_rows_sorted t [ "x" ])

let suite =
  [
    Alcotest.test_case "create + peek" `Quick test_create_peek;
    Alcotest.test_case "reveal masks invalid rows" `Quick
      test_reveal_masks_invalid;
    Alcotest.test_case "filters (and, cmp)" `Quick test_filter_exprs;
    Alcotest.test_case "filters (or, not)" `Quick test_filter_or_not;
    Alcotest.test_case "derived columns (Q3 revenue)" `Quick test_map_arith;
    Alcotest.test_case "private division expression" `Quick
      test_private_division_expr;
    Alcotest.test_case "TableSort multi-key + stability" `Quick
      test_tablesort_multikey;
    Alcotest.test_case "AggNet sum + copy" `Quick test_aggnet_sum_copy;
    Alcotest.test_case "AggNet min/max" `Quick test_aggnet_minmax;
    Alcotest.test_case "AggNet non-pow2 padding" `Quick
      test_aggnet_non_pow2_padding;
    Alcotest.test_case "group-by sum/count/min/max" `Quick test_group_by;
    Alcotest.test_case "group-by AVG (oblivious division)" `Quick
      test_group_by_avg;
    Alcotest.test_case "group-by excludes invalid rows" `Quick
      test_group_by_respects_filter;
    Alcotest.test_case "distinct" `Quick test_distinct;
    Alcotest.test_case "order-by + limit" `Quick test_order_by_limit;
    Alcotest.test_case "inner join vs plaintext" `Quick test_inner_join;
    Alcotest.test_case "inner join with trim" `Quick test_inner_join_trim;
    Alcotest.test_case "join respects validity" `Quick
      test_join_respects_validity;
    Alcotest.test_case "left outer join" `Quick test_left_outer_join;
    Alcotest.test_case "right outer join" `Quick test_right_outer_join;
    Alcotest.test_case "full outer join" `Quick test_full_outer_join;
    Alcotest.test_case "semi join" `Quick test_semi_join;
    Alcotest.test_case "anti join" `Quick test_anti_join;
    Alcotest.test_case "semi/anti with duplicates" `Quick
      test_semi_join_duplicates_both_sides;
    Alcotest.test_case "fused join-aggregation" `Quick
      test_join_with_aggregation;
    Alcotest.test_case "many-to-many via pre-aggregation" `Quick
      test_many_to_many_preaggregation;
    Alcotest.test_case "concat tables" `Quick test_concat_tables;
    QCheck_alcotest.to_alcotest qcheck_join_vs_plaintext;
    QCheck_alcotest.to_alcotest qcheck_groupby_vs_plaintext;
    Alcotest.test_case "trim heuristic (C.3 table)" `Quick
      test_trim_heuristic_values;
    Alcotest.test_case "theta join" `Quick test_theta_join;
    Alcotest.test_case "signed expressions" `Quick test_signed_expressions;
    Alcotest.test_case "order-by signed column" `Quick test_order_by_signed;
    Alcotest.test_case "global min/max/avg respect validity" `Quick
      test_global_minmax_validity;
    QCheck_alcotest.to_alcotest qcheck_semi_anti_partition;
    Alcotest.test_case "custom aggregations (Appendix C)" `Quick
      test_custom_aggregation;
    QCheck_alcotest.to_alcotest qcheck_tablesort_idempotent;
    QCheck_alcotest.to_alcotest qcheck_join_output_bound;
    Alcotest.test_case "unique-key join" `Quick test_join_unique;
    Alcotest.test_case "unique-key join saves bytes" `Quick
      test_join_unique_cheaper;
    Alcotest.test_case "unique-key join + validity" `Quick
      test_join_unique_respects_validity;
    Alcotest.test_case "count distinct" `Quick test_count_distinct;
    Alcotest.test_case "data-owner padding" `Quick test_pad_rows;
    Alcotest.test_case "limit beyond valid rows" `Quick test_limit_beyond_valid;
  ]

let () = Alcotest.run "orq_core" [ ("core", suite) ]
