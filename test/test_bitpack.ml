(* Bit-packed flag-lane tests.

   The packing invariant (ISSUE: bit-packed single-bit share lanes): with
   packing ON or OFF (ORQ_NO_BITPACK), every flag primitive must produce
   identical opened values and identical Comm tallies — bits, messages AND
   rounds, on both the online and the preprocessing counters. Packing may
   only change local work and PRG consumption. Verified here per primitive
   under all three protocols, and end-to-end through quicksort, radixsort
   (both variants) and an aggregation network. *)

open Orq_util
open Orq_proto
open Orq_circuits
module Comm = Orq_net.Comm

let kinds = Ctx.all_kinds

let with_bitpack on f =
  let prev = Mpc.bitpack_enabled () in
  Mpc.set_bitpack on;
  Fun.protect ~finally:(fun () -> Mpc.set_bitpack prev) f

(* Deterministic 0/1 vector, independent of any ctx PRG. *)
let bitvec n seed =
  Array.init n (fun i -> ((i * 2654435761) lxor seed) lsr 3 land 1)

let share_bits ctx n seed = Mpc.share_b ctx (bitvec n seed)

(* ------------------------------------------------------------------ *)
(* Bits: pack/unpack round-trips and canonical form                    *)
(* ------------------------------------------------------------------ *)

let edge_lengths = [ 0; 1; 63; 64; 65; 4097 ]

let test_bits_roundtrip () =
  List.iter
    (fun n ->
      let v = bitvec n (n + 11) in
      let t = Bits.pack v in
      Alcotest.(check int) (Printf.sprintf "length n=%d" n) n (Bits.length t);
      Alcotest.(check (array int))
        (Printf.sprintf "pack/unpack n=%d" n)
        v (Bits.unpack t);
      Array.iteri
        (fun i b ->
          Alcotest.(check int) (Printf.sprintf "get n=%d i=%d" n i) b
            (Bits.get t i))
        v;
      Alcotest.(check int)
        (Printf.sprintf "popcount n=%d" n)
        (Array.fold_left ( + ) 0 v)
        (Bits.popcount t);
      (* canonical tail: words survive an of_words round-trip *)
      let t' = Bits.of_words n (Array.copy (Bits.words t)) in
      Alcotest.(check bool) (Printf.sprintf "of_words n=%d" n) true
        (Bits.equal t t');
      Alcotest.(check (array int))
        (Printf.sprintf "extend n=%d" n)
        (Array.map (fun b -> -b) v)
        (Bits.extend t))
    edge_lengths

let test_bits_ops () =
  List.iter
    (fun n ->
      let va = bitvec n 3 and vb = bitvec n 19 in
      let a = Bits.pack va and b = Bits.pack vb in
      let map2 f = Array.init n (fun i -> f va.(i) vb.(i)) in
      Alcotest.(check (array int))
        (Printf.sprintf "xor n=%d" n)
        (map2 ( lxor ))
        (Bits.unpack (Bits.xor a b));
      Alcotest.(check (array int))
        (Printf.sprintf "band n=%d" n)
        (map2 ( land ))
        (Bits.unpack (Bits.band a b));
      Alcotest.(check (array int))
        (Printf.sprintf "bor n=%d" n)
        (map2 ( lor ))
        (Bits.unpack (Bits.bor a b));
      let nt = Bits.bnot a in
      Alcotest.(check (array int))
        (Printf.sprintf "bnot n=%d" n)
        (Array.map (fun x -> 1 - x) va)
        (Bits.unpack nt);
      (* bnot stays canonical: popcount counts only live flags *)
      Alcotest.(check int)
        (Printf.sprintf "bnot canonical n=%d" n)
        (n - Array.fold_left ( + ) 0 va)
        (Bits.popcount nt);
      if n > 1 then begin
        let pos = n / 3 and len = n / 2 in
        Alcotest.(check (array int))
          (Printf.sprintf "sub n=%d" n)
          (Array.sub va pos len)
          (Bits.unpack (Bits.sub a pos len));
        Alcotest.(check (array int))
          (Printf.sprintf "append n=%d" n)
          (Array.append va vb)
          (Bits.unpack (Bits.append a b));
        let perm = Array.init n (fun i -> (i + 7) mod n) in
        Alcotest.(check (array int))
          (Printf.sprintf "gather n=%d" n)
          (Array.map (fun j -> va.(j)) perm)
          (Bits.unpack (Bits.gather a perm));
        let out = Array.make n 0 in
        Array.iteri (fun i j -> out.(j) <- va.(i)) perm;
        Alcotest.(check (array int))
          (Printf.sprintf "scatter n=%d" n)
          out
          (Bits.unpack (Bits.scatter a perm))
      end)
    [ 1; 63; 64; 65; 4097 ]

(* ------------------------------------------------------------------ *)
(* Packed == unpacked: values and tallies per primitive                *)
(* ------------------------------------------------------------------ *)

type tallies = { online : Comm.tally; preproc : Comm.tally }

(* Run [f] on a fresh ctx with packing [on]; return (values, tallies). *)
let run_mode kind on (f : Ctx.t -> int array list) : int array list * tallies =
  with_bitpack on (fun () ->
      let ctx = Ctx.create ~seed:77 kind in
      let c0 = Comm.snapshot ctx.Ctx.comm in
      let p0 = Comm.snapshot ctx.Ctx.preproc in
      let vs = f ctx in
      ( vs,
        {
          online = Comm.since ctx.Ctx.comm c0;
          preproc = Comm.since ctx.Ctx.preproc p0;
        } ))

let check_modes_equal lbl kind (f : Ctx.t -> int array list) =
  let vp, tp = run_mode kind true f in
  let vu, tu = run_mode kind false f in
  List.iteri
    (fun i (a, b) ->
      Alcotest.(check (array int)) (Printf.sprintf "%s value %d" lbl i) b a)
    (List.combine vp vu);
  let ck what a b =
    Alcotest.(check int) (Printf.sprintf "%s %s" lbl what) b a
  in
  ck "online bits" tp.online.Comm.t_bits tu.online.Comm.t_bits;
  ck "online messages" tp.online.Comm.t_messages tu.online.Comm.t_messages;
  ck "online rounds" tp.online.Comm.t_rounds tu.online.Comm.t_rounds;
  ck "preproc bits" tp.preproc.Comm.t_bits tu.preproc.Comm.t_bits;
  ck "preproc messages" tp.preproc.Comm.t_messages tu.preproc.Comm.t_messages

let test_primitives_packed_eq_unpacked () =
  List.iter
    (fun kind ->
      let lbl = Ctx.kind_label kind in
      List.iter
        (fun n ->
          check_modes_equal
            (Printf.sprintf "%s n=%d primitives" lbl n)
            kind
            (fun ctx ->
              let x = Share.pack_flags (share_bits ctx n 1) in
              let y = Share.pack_flags (share_bits ctx n 2) in
              let b = Share.pack_flags (share_bits ctx n 3) in
              let band = Mpc.band_f ctx x y in
              let bor = Mpc.bor_f ctx x y in
              let bxor = Mpc.xor_f x y in
              let bnot = Mpc.bnot_f x in
              let mux = Mpc.mux_f ctx b x y in
              let opened = Mpc.open_f ctx band in
              List.map
                (fun f -> Bits.unpack (Share.reconstruct_flags f))
                [ band; bor; bxor; bnot; mux ]
              @ [ Bits.unpack opened ]))
        [ 1; 63; 64; 65; 200 ])
    kinds

let test_many_and_b2a_packed_eq_unpacked () =
  List.iter
    (fun kind ->
      let lbl = Ctx.kind_label kind in
      check_modes_equal (lbl ^ " band_f_many/bit_b2a") kind (fun ctx ->
          let n = 130 in
          let xs =
            Array.init 5 (fun i -> Share.pack_flags (share_bits ctx n (10 + i)))
          in
          let ys =
            Array.init 5 (fun i -> Share.pack_flags (share_bits ctx n (20 + i)))
          in
          let ands = Mpc.band_f_many ctx xs ys in
          let ors = Mpc.bor_f_many ctx xs ys in
          let ariths = Convert.bit_b2a_flags_many ctx ands in
          let cs = Mpc.open_f_many ctx ors in
          Array.to_list
            (Array.map (fun f -> Bits.unpack (Share.reconstruct_flags f)) ands)
          @ Array.to_list (Array.map Share.reconstruct ariths)
          @ Array.to_list (Array.map Bits.unpack cs)))
    kinds

(* band1 must be value- and traffic-identical to band ~width:1. *)
let test_band1_vs_band_width1 () =
  List.iter
    (fun kind ->
      let lbl = Ctx.kind_label kind in
      let run f =
        let ctx = Ctx.create ~seed:99 kind in
        let x = share_bits ctx 77 4 and y = share_bits ctx 77 5 in
        let before = Comm.snapshot ctx.Ctx.comm in
        let z = f ctx x y in
        (Share.reconstruct z, Comm.since ctx.Ctx.comm before)
      in
      let v1, t1 = run (fun ctx x y -> Mpc.band1 ctx x y) in
      let v2, t2 = run (fun ctx x y -> Mpc.band ~width:1 ctx x y) in
      Alcotest.(check (array int)) (lbl ^ " band1 value") v2 v1;
      Alcotest.(check int) (lbl ^ " band1 bits") t2.Comm.t_bits t1.Comm.t_bits;
      Alcotest.(check int)
        (lbl ^ " band1 messages")
        t2.Comm.t_messages t1.Comm.t_messages;
      Alcotest.(check int)
        (lbl ^ " band1 rounds")
        t2.Comm.t_rounds t1.Comm.t_rounds)
    kinds

(* ------------------------------------------------------------------ *)
(* End to end: sorts and aggregation identical across modes            *)
(* ------------------------------------------------------------------ *)

let test_e2e_quicksort () =
  List.iter
    (fun kind ->
      let lbl = Ctx.kind_label kind in
      check_modes_equal (lbl ^ " quicksort") kind (fun ctx ->
          let n = 40 in
          (* unique keys: a fixed permutation of 0..n-1 *)
          let keys = Array.init n (fun i -> (i * 17) mod n) in
          let carry = Array.init n (fun i -> i * 3) in
          let kc = Mpc.share_b ctx keys and cc = Mpc.share_b ctx carry in
          let module Q = Orq_sort.Quicksort in
          let ks, cs =
            Q.sort ctx ~keys:[ { Q.col = kc; width = 8; dir = Q.Asc } ] [ cc ]
          in
          List.map Share.reconstruct (ks @ cs)))
    kinds

let test_e2e_radixsort () =
  List.iter
    (fun kind ->
      let lbl = Ctx.kind_label kind in
      check_modes_equal (lbl ^ " radixsort") kind (fun ctx ->
          let n = 40 in
          let keys = Array.init n (fun i -> (i * 13) mod 32) in
          let carry = Array.init n (fun i -> 1000 + i) in
          let kc = Mpc.share_b ctx keys and cc = Mpc.share_b ctx carry in
          let k1, r1 = Orq_sort.Radixsort.sort ctx ~bits:5 kc [ cc ] in
          let (k2, r2), sigma =
            Orq_sort.Radix_compose.sort_with_perm ctx ~bits:5 kc [ cc ]
          in
          List.map Share.reconstruct ((k1 :: r1) @ (k2 :: r2) @ [ sigma ])))
    kinds

let test_e2e_aggnet () =
  List.iter
    (fun kind ->
      let lbl = Ctx.kind_label kind in
      check_modes_equal (lbl ^ " aggnet") kind (fun ctx ->
          let n = 24 in
          (* sorted grouping key with repeats, plus values *)
          let keys = Array.init n (fun i -> i / 4) in
          let vals = Array.init n (fun i -> (i * 7) mod 50) in
          let kc = Mpc.share_b ctx keys in
          let va = Mpc.share_a ctx vals and vb = Mpc.share_b ctx vals in
          let module A = Orq_core.Aggnet in
          let out =
            A.run ctx
              ~keys:[ (kc, 6) ]
              [
                { A.col = va; func = A.Sum; keys = A.Group; width = 16 };
                { A.col = vb; func = A.Min 8; keys = A.Group; width = 8 };
                { A.col = vb; func = A.Copy; keys = A.Group; width = 8 };
              ]
          in
          let dist = A.distinct_bits ctx ~keys:[ (kc, 6) ] in
          List.map Share.reconstruct (out @ [ dist ])))
    kinds

(* Sorted plaintext correctness (not just cross-mode equality): the packed
   quicksort still sorts. *)
let test_quicksort_sorts () =
  List.iter
    (fun kind ->
      let ctx = Ctx.create ~seed:5 kind in
      let n = 64 in
      let keys = Array.init n (fun i -> (i * 29) mod n) in
      let kc = Mpc.share_b ctx keys in
      let module Q = Orq_sort.Quicksort in
      let ks, _ =
        Q.sort ctx ~keys:[ { Q.col = kc; width = 8; dir = Q.Asc } ] []
      in
      let got = Share.reconstruct (List.hd ks) in
      let want = Array.init n (fun i -> i) in
      Alcotest.(check (array int))
        (Ctx.kind_label kind ^ " sorted")
        want got)
    kinds

let () =
  Alcotest.run "bitpack"
    [
      ( "bits",
        [
          Alcotest.test_case "pack/unpack round-trips" `Quick
            test_bits_roundtrip;
          Alcotest.test_case "bulk ops + structural ops" `Quick test_bits_ops;
        ] );
      ( "packed == unpacked",
        [
          Alcotest.test_case "primitives: values and tallies" `Quick
            test_primitives_packed_eq_unpacked;
          Alcotest.test_case "_many + bit_b2a: values and tallies" `Quick
            test_many_and_b2a_packed_eq_unpacked;
          Alcotest.test_case "band1 == band ~width:1" `Quick
            test_band1_vs_band_width1;
        ] );
      ( "end to end",
        [
          Alcotest.test_case "quicksort identical across modes" `Quick
            test_e2e_quicksort;
          Alcotest.test_case "radixsort identical across modes" `Quick
            test_e2e_radixsort;
          Alcotest.test_case "aggregation identical across modes" `Quick
            test_e2e_aggnet;
          Alcotest.test_case "packed quicksort sorts" `Quick
            test_quicksort_sorts;
        ] );
    ]
