(* Round-count regression tests for the cross-lane fusion layer.

   The analytic depth formulas (in units of one interactive round, which
   the probe below re-derives per protocol):

     eq  over w bits          ceil(log2 w)            (bor halving ladder)
     lt  over w bits          ceil(log2 w) + 1        (initial AND + ladder)
     add (private operands)   ceil(log2 w) + 1        (generate AND + prefix)
     add_pub                  ceil(log2 w)            (generate is local)
     a2b                      ceil(log2 w) + 1        (one opening + add_pub)

   and every [_many] entry point must cost the MAX lane depth, not the
   sum — that is the whole point of the fusion layer. Disabling fusion
   must leave bits, messages and opened values byte-identical, changing
   rounds only. *)

open Orq_util
open Orq_proto
open Orq_circuits
module Comm = Orq_net.Comm

let kinds = Ctx.all_kinds

let rounds_of (ctx : Ctx.t) f =
  let before = Comm.snapshot ctx.Ctx.comm in
  let r = f () in
  (r, (Comm.since ctx.Ctx.comm before).Comm.t_rounds)

let with_fusion on f =
  let prev = Mpc.fusion_enabled () in
  Mpc.set_fusion on;
  Fun.protect ~finally:(fun () -> Mpc.set_fusion prev) f

let share2 ctx ~w n seed =
  let x = Array.init n (fun i -> (i * 2654435761) lxor seed) in
  Mpc.share_b ctx (Array.map (fun v -> v land Ring.mask w) x)

(* One band must cost exactly one round under every protocol — the unit
   all formulas below are stated in. *)
let test_round_unit () =
  List.iter
    (fun k ->
      let ctx = Ctx.create ~seed:1 k in
      let x = share2 ctx ~w:8 5 3 and y = share2 ctx ~w:8 5 7 in
      let _, r = rounds_of ctx (fun () -> Mpc.band ctx x y) in
      Alcotest.(check int) (Ctx.kind_label k ^ " band round unit") 1 r)
    kinds

let test_single_formulas () =
  List.iter
    (fun k ->
      let lbl = Ctx.kind_label k in
      let ctx = Ctx.create ~seed:2 k in
      List.iter
        (fun w ->
          let d = Ring.log2_ceil w in
          let x = share2 ctx ~w 9 1 and y = share2 ctx ~w 9 2 in
          let _, req = rounds_of ctx (fun () -> Compare.eq ctx ~w x y) in
          Alcotest.(check int)
            (Printf.sprintf "%s eq w=%d" lbl w)
            d req;
          let _, rlt = rounds_of ctx (fun () -> Compare.lt ctx ~w x y) in
          Alcotest.(check int)
            (Printf.sprintf "%s lt w=%d" lbl w)
            (d + 1) rlt;
          let _, radd = rounds_of ctx (fun () -> Adder.add ctx ~w x y) in
          Alcotest.(check int)
            (Printf.sprintf "%s add w=%d" lbl w)
            (d + 1) radd;
          let c = Array.make 9 3 in
          let _, rap = rounds_of ctx (fun () -> Adder.add_pub ctx ~w x c) in
          Alcotest.(check int)
            (Printf.sprintf "%s add_pub w=%d" lbl w)
            d rap;
          let xa = Mpc.share_a ctx (Array.init 9 (fun i -> i)) in
          let _, ra2b = rounds_of ctx (fun () -> Convert.a2b ~w ctx xa) in
          Alcotest.(check int)
            (Printf.sprintf "%s a2b w=%d" lbl w)
            (d + 1) ra2b)
        [ 1; 2; 8; 19; 32 ])
    kinds

(* Batched entry points: rounds equal the deepest lane, for any lane mix. *)
let test_many_max_depth () =
  List.iter
    (fun k ->
      let lbl = Ctx.kind_label k in
      let ctx = Ctx.create ~seed:3 k in
      let lanes ws = Array.map (fun w -> (share2 ctx ~w 7 1, share2 ctx ~w 7 2, w)) ws in
      let deepest ws = Array.fold_left (fun a w -> max a (Ring.log2_ceil w)) 0 ws in
      let ws = [| 32; 8; 1; 19 |] in
      let _, req = rounds_of ctx (fun () -> Compare.eq_many ctx (lanes ws)) in
      Alcotest.(check int) (lbl ^ " eq_many") (deepest ws) req;
      let _, rlt = rounds_of ctx (fun () -> Compare.lt_many ctx (lanes ws)) in
      Alcotest.(check int) (lbl ^ " lt_many") (deepest ws + 1) rlt;
      let _, radd = rounds_of ctx (fun () -> Adder.add_many ctx (lanes ws)) in
      Alcotest.(check int) (lbl ^ " add_many") (deepest ws + 1) radd;
      let bits = Array.init 4 (fun i -> share2 ctx ~w:1 7 i) in
      let _, rsel =
        rounds_of ctx (fun () ->
            Mux.select_many ctx
              (Array.map (fun b -> (b, share2 ctx ~w:8 7 3, share2 ctx ~w:8 7 4)) bits))
      in
      Alcotest.(check int) (lbl ^ " select_many") 1 rsel;
      let _, rb2a = rounds_of ctx (fun () -> Convert.bit_b2a_many ctx bits) in
      Alcotest.(check int) (lbl ^ " bit_b2a_many") 1 rb2a;
      let alanes =
        Array.map (fun w -> (Mpc.share_a ctx (Array.init 7 (fun i -> i)), w)) ws
      in
      let _, ra2b = rounds_of ctx (fun () -> Convert.a2b_many ctx alanes) in
      Alcotest.(check int) (lbl ^ " a2b_many") (deepest ws + 1) ra2b;
      (* composite-equality groups reduce in lockstep: ladder depth plus a
         log-depth AND tree over the widest group *)
      let groups =
        [|
          [ (share2 ctx ~w:16 7 1, share2 ctx ~w:16 7 2, 16);
            (share2 ctx ~w:4 7 3, share2 ctx ~w:4 7 4, 4);
            (share2 ctx ~w:1 7 5, share2 ctx ~w:1 7 6, 1) ];
          [ (share2 ctx ~w:8 7 7, share2 ctx ~w:8 7 8, 8) ];
        |]
      in
      let _, rcomp =
        rounds_of ctx (fun () -> Compare.eq_composite_many ctx groups)
      in
      Alcotest.(check int) (lbl ^ " eq_composite_many")
        (Ring.log2_ceil 16 + Ring.log2_ceil 3)
        rcomp)
    kinds

(* Fusing must only merge rounds: bits, messages and every opened value
   stay byte-identical when fusion is switched off. *)
let test_fused_equals_unfused () =
  List.iter
    (fun k ->
      let lbl = Ctx.kind_label k in
      let run fused =
        with_fusion fused (fun () ->
            let ctx = Ctx.create ~seed:17 k in
            let before = Comm.snapshot ctx.Ctx.comm in
            let ws = [| 24; 6; 13 |] in
            let lanes =
              Array.map (fun w -> (share2 ctx ~w 11 1, share2 ctx ~w 11 2, w)) ws
            in
            let eqs = Compare.eq_many ctx lanes in
            let lts = Compare.lt_many ctx lanes in
            let sums = Adder.add_many ctx lanes in
            let sel =
              Mux.select_many ctx
                (Array.map2 (fun b (x, y, _) -> (b, x, y)) eqs lanes)
            in
            let b2a = Convert.bit_b2a_many ctx lts in
            let opened =
              List.concat_map
                (fun a -> Array.to_list (Array.map Share.reconstruct a))
                [ eqs; lts; sums; sel; b2a ]
            in
            (opened, Comm.since ctx.Ctx.comm before))
      in
      let vf, tf = run true in
      let vu, tu = run false in
      List.iteri
        (fun i (a, b) ->
          Alcotest.(check (array int))
            (Printf.sprintf "%s opened %d" lbl i)
            b a)
        (List.combine vf vu);
      Alcotest.(check int) (lbl ^ " bits equal") tu.Comm.t_bits tf.Comm.t_bits;
      Alcotest.(check int) (lbl ^ " messages equal") tu.Comm.t_messages
        tf.Comm.t_messages;
      if tf.Comm.t_rounds > tu.Comm.t_rounds then
        Alcotest.failf "%s fused rounds %d > unfused %d" lbl tf.Comm.t_rounds
          tu.Comm.t_rounds)
    kinds

(* The parallel-track combinator charges the deepest track, with traffic
   unchanged; with fusion off it charges the sum. *)
let test_fuse_rounds_combinator () =
  List.iter
    (fun k ->
      let lbl = Ctx.kind_label k in
      let run fused =
        with_fusion fused (fun () ->
            let ctx = Ctx.create ~seed:23 k in
            let x = share2 ctx ~w:8 9 1 and y = share2 ctx ~w:8 9 2 in
            let before = Comm.snapshot ctx.Ctx.comm in
            let res =
              Mpc.fuse_rounds ctx
                [|
                  (fun () ->
                    (* two-round track *)
                    Mpc.band ctx (Mpc.band ctx x y) y);
                  (fun () -> Mpc.band ctx x y);
                |]
            in
            ( Array.map Share.reconstruct res,
              Comm.since ctx.Ctx.comm before ))
      in
      let vf, tf = run true in
      let vu, tu = run false in
      Alcotest.(check int) (lbl ^ " tracks fused to max") 2 tf.Comm.t_rounds;
      Alcotest.(check int) (lbl ^ " tracks unfused sum") 3 tu.Comm.t_rounds;
      Alcotest.(check int) (lbl ^ " track bits") tu.Comm.t_bits tf.Comm.t_bits;
      Array.iteri
        (fun i a -> Alcotest.(check (array int)) (lbl ^ " track value") vu.(i) a)
        vf)
    kinds

let () =
  Alcotest.run "fusion"
    [
      ( "rounds",
        [
          Alcotest.test_case "band is one round" `Quick test_round_unit;
          Alcotest.test_case "single-circuit depth formulas" `Quick
            test_single_formulas;
          Alcotest.test_case "_many = max lane depth" `Quick
            test_many_max_depth;
        ] );
      ( "invariants",
        [
          Alcotest.test_case "fused == unfused traffic and values" `Quick
            test_fused_equals_unfused;
          Alcotest.test_case "fuse_rounds combinator" `Quick
            test_fuse_rounds_combinator;
        ] );
    ]
