(* Unit and property tests for the MPC protocol layer: secret sharing,
   linear operations, Beaver/replicated multiplication, opening, metering,
   and malicious-abort behaviour. *)

open Orq_util
open Orq_proto

let kinds = Ctx.all_kinds

let vec_testable = Alcotest.(array int)

let words_gen n =
  QCheck.Gen.(array_size (return n) (map (fun x -> x land Ring.ones) int))

let arb_words n = QCheck.make (words_gen n)

let for_all_kinds f = List.iter (fun k -> f (Ctx.create ~seed:42 k)) kinds

(* ---------------- sharing ---------------- *)

let test_share_roundtrip () =
  for_all_kinds (fun ctx ->
      let x = Prg.words ctx.Ctx.prg 100 in
      let sa = Mpc.share_a ctx x in
      let sb = Mpc.share_b ctx x in
      Alcotest.(check vec_testable) "arith roundtrip" x (Share.reconstruct sa);
      Alcotest.(check vec_testable) "bool roundtrip" x (Share.reconstruct sb))

let test_share_hides () =
  (* the first share vector alone must not equal the plaintext (masked) *)
  for_all_kinds (fun ctx ->
      let x = Array.make 64 12345 in
      let s = Mpc.share_a ctx x in
      Alcotest.(check bool) "share-0 masked" false (Vec.equal s.Share.v.(0) x);
      let distinct = ref 0 in
      Array.iter (fun v -> if v <> s.Share.v.(1).(0) then incr distinct) s.Share.v.(1);
      Alcotest.(check bool) "share-1 non-constant" true (!distinct > 0))

let test_public () =
  for_all_kinds (fun ctx ->
      let s = Mpc.public_a ctx 5 7 in
      Alcotest.(check vec_testable) "public const" (Array.make 5 7)
        (Share.reconstruct s))

(* ---------------- linear ops ---------------- *)

let test_linear () =
  for_all_kinds (fun ctx ->
      let x = Prg.words ctx.Ctx.prg 50 and y = Prg.words ctx.Ctx.prg 50 in
      let sx = Mpc.share_a ctx x and sy = Mpc.share_a ctx y in
      Alcotest.(check vec_testable) "add" (Vec.add x y)
        (Share.reconstruct (Mpc.add sx sy));
      Alcotest.(check vec_testable) "sub" (Vec.sub x y)
        (Share.reconstruct (Mpc.sub sx sy));
      Alcotest.(check vec_testable) "neg" (Vec.neg x)
        (Share.reconstruct (Mpc.neg sx));
      Alcotest.(check vec_testable) "add_pub" (Vec.add_scalar x 9)
        (Share.reconstruct (Mpc.add_pub sx 9));
      Alcotest.(check vec_testable) "mul_pub" (Vec.mul_scalar x 3)
        (Share.reconstruct (Mpc.mul_pub sx 3));
      Alcotest.(check vec_testable) "mul_pub_vec" (Vec.mul x y)
        (Share.reconstruct (Mpc.mul_pub_vec sx y)))

let test_bool_linear () =
  for_all_kinds (fun ctx ->
      let x = Prg.words ctx.Ctx.prg 50 and y = Prg.words ctx.Ctx.prg 50 in
      let sx = Mpc.share_b ctx x in
      Alcotest.(check vec_testable) "xor" (Vec.xor x y)
        (Share.reconstruct (Mpc.xor sx (Mpc.share_b ctx y)));
      Alcotest.(check vec_testable) "xor_pub" (Vec.xor_scalar x 0xFF)
        (Share.reconstruct (Mpc.xor_pub sx 0xFF));
      Alcotest.(check vec_testable) "and_mask" (Vec.and_scalar x 0xF0F0)
        (Share.reconstruct (Mpc.and_mask sx 0xF0F0));
      Alcotest.(check vec_testable) "lshift" (Vec.shift_left x 3)
        (Share.reconstruct (Mpc.lshift sx 3));
      Alcotest.(check vec_testable) "rshift" (Vec.shift_right x 3)
        (Share.reconstruct (Mpc.rshift sx 3)))

let test_extend_bit () =
  for_all_kinds (fun ctx ->
      let bits = [| 0; 1; 1; 0; 1 |] in
      let s = Mpc.share_b ctx bits in
      let ext = Share.reconstruct (Mpc.extend_bit s) in
      Alcotest.(check vec_testable) "extend"
        (Array.map (fun b -> -b) bits)
        ext)

(* ---------------- interactive ops ---------------- *)

let test_mul_correct =
  QCheck.Test.make ~name:"mul correct (all protocols)" ~count:30
    (QCheck.pair (arb_words 17) (arb_words 17))
    (fun (x, y) ->
      List.for_all
        (fun k ->
          let ctx = Ctx.create ~seed:7 k in
          let z =
            Mpc.mul ctx (Mpc.share_a ctx x) (Mpc.share_a ctx y)
            |> Share.reconstruct
          in
          Vec.equal z (Vec.mul x y))
        kinds)

let test_and_correct =
  QCheck.Test.make ~name:"band correct (all protocols)" ~count:30
    (QCheck.pair (arb_words 17) (arb_words 17))
    (fun (x, y) ->
      List.for_all
        (fun k ->
          let ctx = Ctx.create ~seed:9 k in
          let z =
            Mpc.band ctx (Mpc.share_b ctx x) (Mpc.share_b ctx y)
            |> Share.reconstruct
          in
          Vec.equal z (Vec.band x y))
        kinds)

let test_bor () =
  for_all_kinds (fun ctx ->
      let x = Prg.words ctx.Ctx.prg 20 and y = Prg.words ctx.Ctx.prg 20 in
      let z =
        Mpc.bor ctx (Mpc.share_b ctx x) (Mpc.share_b ctx y)
        |> Share.reconstruct
      in
      Alcotest.(check vec_testable) "bor" (Vec.bor x y) z)

let test_open () =
  for_all_kinds (fun ctx ->
      let x = Prg.words ctx.Ctx.prg 33 in
      let s = Mpc.share_a ctx x in
      let before = Orq_net.Comm.snapshot ctx.Ctx.comm in
      let opened = Mpc.open_ ctx s in
      let tl = Orq_net.Comm.since ctx.Ctx.comm before in
      Alcotest.(check vec_testable) "open value" x opened;
      Alcotest.(check int) "open is 1 round" 1 tl.Orq_net.Comm.t_rounds;
      Alcotest.(check bool) "open moved bits" true (tl.Orq_net.Comm.t_bits > 0))

let test_mul_metering () =
  (* one multiplication of n elements: 1 online round; bits per the
     per-protocol constants (2PC: 4wn, 3PC: 3wn, 4PC: 12wn) *)
  let expect = [ (Ctx.Sh_dm, 4); (Ctx.Sh_hm, 3); (Ctx.Mal_hm, 12) ] in
  List.iter
    (fun (k, factor) ->
      let ctx = Ctx.create k in
      let n = 10 in
      let x = Mpc.share_a ctx (Array.make n 3) in
      let before = Orq_net.Comm.snapshot ctx.Ctx.comm in
      ignore (Mpc.mul ctx x x);
      let tl = Orq_net.Comm.since ctx.Ctx.comm before in
      Alcotest.(check int)
        (Ctx.kind_label k ^ " rounds")
        1 tl.Orq_net.Comm.t_rounds;
      Alcotest.(check int)
        (Ctx.kind_label k ^ " bits")
        (factor * ctx.Ctx.ell * n)
        tl.Orq_net.Comm.t_bits)
    expect

let test_width_metering () =
  (* single-bit AND should be charged 1 bit per element, not a word *)
  let ctx = Ctx.create Ctx.Sh_hm in
  let n = 8 in
  let b = Mpc.share_b ctx (Array.make n 1) in
  let before = Orq_net.Comm.snapshot ctx.Ctx.comm in
  ignore (Mpc.band ~width:1 ctx b b);
  let tl = Orq_net.Comm.since ctx.Ctx.comm before in
  Alcotest.(check int) "1-bit AND bits" (3 * 1 * n) tl.Orq_net.Comm.t_bits

let test_reshare () =
  for_all_kinds (fun ctx ->
      let x = Prg.words ctx.Ctx.prg 40 in
      let s = Mpc.share_a ctx x in
      let s' = Mpc.reshare_unmetered ctx s in
      Alcotest.(check vec_testable) "reshare preserves secret" x
        (Share.reconstruct s');
      Alcotest.(check bool) "reshare rerandomizes" false
        (Vec.equal s.Share.v.(0) s'.Share.v.(0)))

let test_sum_prefix () =
  for_all_kinds (fun ctx ->
      let x = [| 1; 2; 3; 4; 5 |] in
      let s = Mpc.share_a ctx x in
      Alcotest.(check vec_testable) "sum_all" [| 15 |]
        (Share.reconstruct (Mpc.sum_all s));
      Alcotest.(check vec_testable) "prefix_sum" [| 1; 3; 6; 10; 15 |]
        (Share.reconstruct (Mpc.prefix_sum s)))

(* ---------------- dealer ---------------- *)

let test_beaver_triple () =
  for_all_kinds (fun ctx ->
      let { Dealer.ta; tb; tc } = Dealer.beaver ctx Share.Arith 25 in
      Alcotest.(check vec_testable) "c = a*b"
        (Vec.mul (Share.reconstruct ta) (Share.reconstruct tb))
        (Share.reconstruct tc);
      let { Dealer.ta; tb; tc } = Dealer.beaver ctx Share.Bool 25 in
      Alcotest.(check vec_testable) "c = a&b"
        (Vec.band (Share.reconstruct ta) (Share.reconstruct tb))
        (Share.reconstruct tc))

let test_dabits () =
  for_all_kinds (fun ctx ->
      let { Dealer.da_bool; da_arith } = Dealer.dabits ctx 64 in
      let b = Share.reconstruct da_bool and a = Share.reconstruct da_arith in
      Alcotest.(check vec_testable) "dabit consistency" b a;
      Array.iter (fun x -> Alcotest.(check bool) "bit" true (x = 0 || x = 1)) b)

let test_edabits () =
  for_all_kinds (fun ctx ->
      let { Dealer.ed_arith; ed_bool } = Dealer.edabits ctx 32 in
      Alcotest.(check vec_testable) "edabit consistency"
        (Share.reconstruct ed_arith)
        (Share.reconstruct ed_bool))

let test_preproc_metered_separately () =
  let ctx = Ctx.create Ctx.Sh_dm in
  let before_on = Orq_net.Comm.snapshot ctx.Ctx.comm in
  ignore (Dealer.beaver ctx Share.Arith 10);
  let on = Orq_net.Comm.since ctx.Ctx.comm before_on in
  Alcotest.(check int) "dealer does not touch online counter" 0
    on.Orq_net.Comm.t_bits;
  Alcotest.(check bool) "dealer metered on preproc" true
    (ctx.Ctx.preproc.Orq_net.Comm.bits > 0)

(* ---------------- malicious abort ---------------- *)

let test_malicious_abort_mul () =
  let ctx = Ctx.create Ctx.Mal_hm in
  let x = Mpc.share_a ctx [| 1; 2; 3 |] in
  let tampered ~party ~op =
    if party = 2 && op = "mul" then Some 99 else None
  in
  Alcotest.check_raises "tampered mul aborts"
    (Ctx.Abort "mul: cross-term verification failed") (fun () ->
      Ctx.with_tamper ctx tampered (fun () -> ignore (Mpc.mul ctx x x)))

let test_malicious_abort_open () =
  let ctx = Ctx.create Ctx.Mal_hm in
  let x = Mpc.share_a ctx [| 5 |] in
  let tampered ~party ~op = if party = 0 && op = "open" then Some 1 else None in
  Alcotest.check_raises "tampered open aborts"
    (Ctx.Abort "open: share/hash mismatch detected") (fun () ->
      Ctx.with_tamper ctx tampered (fun () -> ignore (Mpc.open_ ctx x)))

let test_semi_honest_no_detection () =
  (* semi-honest protocols do not verify: the tamper hook is ignored *)
  List.iter
    (fun k ->
      let ctx = Ctx.create k in
      let x = Mpc.share_a ctx [| 1; 2 |] in
      let tampered ~party:_ ~op:_ = Some 1 in
      Ctx.with_tamper ctx tampered (fun () -> ignore (Mpc.mul ctx x x)))
    [ Ctx.Sh_dm; Ctx.Sh_hm ]

let suite =
  [
    Alcotest.test_case "share roundtrip" `Quick test_share_roundtrip;
    Alcotest.test_case "shares hide plaintext" `Quick test_share_hides;
    Alcotest.test_case "public constants" `Quick test_public;
    Alcotest.test_case "arith linear ops" `Quick test_linear;
    Alcotest.test_case "bool linear ops" `Quick test_bool_linear;
    Alcotest.test_case "extend_bit" `Quick test_extend_bit;
    QCheck_alcotest.to_alcotest test_mul_correct;
    QCheck_alcotest.to_alcotest test_and_correct;
    Alcotest.test_case "bor" `Quick test_bor;
    Alcotest.test_case "open value + metering" `Quick test_open;
    Alcotest.test_case "mul metering constants" `Quick test_mul_metering;
    Alcotest.test_case "width-aware metering" `Quick test_width_metering;
    Alcotest.test_case "reshare" `Quick test_reshare;
    Alcotest.test_case "sum/prefix-sum" `Quick test_sum_prefix;
    Alcotest.test_case "beaver triples" `Quick test_beaver_triple;
    Alcotest.test_case "daBits" `Quick test_dabits;
    Alcotest.test_case "edaBits" `Quick test_edabits;
    Alcotest.test_case "preproc metered separately" `Quick
      test_preproc_metered_separately;
    Alcotest.test_case "Mal-HM abort on tampered mul" `Quick
      test_malicious_abort_mul;
    Alcotest.test_case "Mal-HM abort on tampered open" `Quick
      test_malicious_abort_open;
    Alcotest.test_case "semi-honest ignores tamper hook" `Quick
      test_semi_honest_no_detection;
  ]

let () = Alcotest.run "orq_proto" [ ("proto", suite) ]
