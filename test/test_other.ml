(* Validation of the nine queries from prior relational-MPC works against
   the plaintext reference engine, under the honest-majority protocol (plus
   cross-protocol smoke tests). *)

open Orq_proto
open Orq_workloads

let n = 400
let plain = lazy (Other_gen.generate ~seed:31 n)

let check kind qname () =
  let plain = Lazy.force plain in
  let ctx = Ctx.create ~seed:13 kind in
  let mdb = Other_gen.share ctx plain in
  let q = Other_queries.find qname in
  let ok, mpc_rows, ref_rows = Other_queries.validate q plain mdb in
  if not ok then
    Alcotest.failf "%s mismatch:@.MPC: %a@.REF: %a" qname
      Fmt.(brackets (list ~sep:semi (brackets (list ~sep:semi int))))
      mpc_rows
      Fmt.(brackets (list ~sep:semi (brackets (list ~sep:semi int))))
      ref_rows

let nonempty qname () =
  (* the chosen dataset sizes must make every query non-degenerate *)
  let plain = Lazy.force plain in
  let q = Other_queries.find qname in
  let r = q.Other_queries.reference plain in
  Alcotest.(check bool)
    (qname ^ " reference non-empty")
    true
    (Orq_plaintext.Ptable.nrows r > 0)

let cases =
  List.concat_map
    (fun (q : Other_queries.query) ->
      [
        Alcotest.test_case (q.Other_queries.name ^ " non-degenerate") `Quick
          (nonempty q.Other_queries.name);
        Alcotest.test_case (q.Other_queries.name ^ " [SH-HM]") `Slow
          (check Ctx.Sh_hm q.Other_queries.name);
      ])
    Other_queries.all

let cross =
  [
    Alcotest.test_case "Comorbidity [SH-DM]" `Slow (check Ctx.Sh_dm "Comorbidity");
    Alcotest.test_case "Comorbidity [Mal-HM]" `Slow (check Ctx.Mal_hm "Comorbidity");
    Alcotest.test_case "Patients [SH-DM]" `Slow (check Ctx.Sh_dm "Patients");
  ]

(* SecretFlow S1-S5 variants, validated under SH-DM (the ABY-based setting
   they run in). *)
let sf_plain = lazy (Tpch_gen.generate ~seed:21 0.0002)

let check_sf qname () =
  let plain = Lazy.force sf_plain in
  let ctx = Ctx.create ~seed:3 Ctx.Sh_dm in
  let mdb = Tpch_gen.share ctx plain in
  let q = Secretflow_queries.find qname in
  let ok, mpc_rows, ref_rows = Secretflow_queries.validate q plain mdb in
  if not ok then
    Alcotest.failf "%s mismatch:@.MPC: %a@.REF: %a" qname
      Fmt.(brackets (list ~sep:semi (brackets (list ~sep:semi int))))
      mpc_rows
      Fmt.(brackets (list ~sep:semi (brackets (list ~sep:semi int))))
      ref_rows

let sf_cases =
  List.map
    (fun (q : Secretflow_queries.query) ->
      Alcotest.test_case
        (q.Secretflow_queries.name ^ " [SH-DM]")
        `Slow
        (check_sf q.Secretflow_queries.name))
    Secretflow_queries.all

let () =
  Alcotest.run "orq_other_queries"
    [ ("other", cases @ cross); ("secretflow", sf_cases) ]
