# Convenience wrapper; everything below is plain dune.

.PHONY: check build test test-checked lint certify kernels-smoke bench bench-rounds bench-bitpack bench-join bench-join-quick bench-scale bench-scale-quick bench-service bench-service-quick bench-net bench-net-quick serve party-demo clean

# Query-service knobs (flags win; see DESIGN.md "Query service")
ORQ_SOCKET ?= /tmp/orq-service.sock
ORQ_SF ?= 0.001

check: build test lint kernels-smoke

build:
	dune build

test:
	dune runtest

# Static lints (see DESIGN.md "Leakage analysis" and "Concurrency
# discipline"): the audited tree must be clean under both the leakage
# lint and the concurrency-discipline lint, and each deliberately-bad
# fixture must trip its pass's rules (self-tests that the lints still
# catch what they claim to).
lint:
	dune exec bin/orq_lint.exe -- lint lib
	dune exec bin/orq_lint.exe -- lint --expect-violations test/lint_fixtures
	dune exec bin/orq_lint.exe -- concur lib
	dune exec bin/orq_lint.exe -- concur --expect-violations test/lint_fixtures

# Full test suite with the runtime lock checker on: every Locked
# acquisition the tests perform is checked against the declared rank
# order, wait discipline, and the no-locks-in-finalisers rule.
test-checked:
	ORQ_DEBUG_CHECKS=1 dune runtest --force

# Oblivious-transcript certificate: predicted (cost model over a shape
# twin) vs measured structural transcripts for the 31-query suite under
# all three protocols; writes CERTIFICATE.json. ~2 min; `--quick` or
# ORQ_CERTIFY_QUICK=1 runs a representative subset in seconds.
# The second pass re-certifies with out-of-core streaming forced on
# (small chunks, tight budget): all (query, protocol) pairs must still
# certify, i.e. chunked execution leaves the oblivious transcript and
# the cost model's prediction untouched.
certify:
	dune exec bin/orq_lint.exe -- certify
	ORQ_CHUNK_ROWS=512 ORQ_MEM_BUDGET=4M dune exec bin/orq_lint.exe -- certify --out CERTIFICATE_chunked.json

# Quick micro-kernel benchmark at 2 domains: exercises the pool dispatch
# path end to end and refreshes BENCH_kernels.json (quick sizes, ~10s).
kernels-smoke:
	ORQ_KERNELS_QUICK=1 dune exec bench/main.exe -- micro-kernels --domains 2

bench:
	dune exec bench/main.exe

# Round-fusion audit: every query fused vs ORQ_NO_FUSION=1, asserting
# byte-identical traffic and plaintext-validated results; refreshes
# BENCH_rounds.json. ORQ_ROUNDS_QUICK=1 runs a representative subset.
bench-rounds:
	dune exec bench/main.exe -- rounds --sf 0.0002 --n 400

# Bit-packed flag-lane audit: packed-vs-word micro speedup (>= 8x gate),
# end-to-end sort/group-by wall clock, and the full query suite with
# packing on vs off asserting identical values and traffic; refreshes
# BENCH_bitpack.json. ORQ_BITPACK_QUICK=1 runs a representative subset.
bench-bitpack:
	dune exec bench/main.exe -- bitpack

# Physical-join selection audit: the join-heavy TPC-H queries under
# forced sort/linear/quad and cost-based auto (ORQ_JOIN), every run
# plaintext-validated; gates that linear beats sort on measured rounds
# and/or bits and that auto never loses to a forced mode; refreshes
# BENCH_join.json. ORQ_JOIN_QUICK=1 runs Q3/Q9 under sh-hm in ~2 min.
bench-join:
	dune exec bench/main.exe -- join --sf 0.0002

bench-join-quick:
	ORQ_JOIN_QUICK=1 dune exec bench/main.exe -- join --sf 0.0002

# Out-of-core scaling audit: chunked streaming overhead vs monolithic
# (<= 1.3x), an SF 0.1 run completing under a budget clamped to 1/4 of
# its own unlimited peak (with real spills and identical tallies), and
# the SF ladder behind EXPERIMENTS.md; refreshes BENCH_scale.json.
# ORQ_SCALE_QUICK=1 shrinks the big run to SF 0.02 (~5 min);
# ORQ_SCALE_SF overrides the big-run scale factor.
bench-scale:
	dune exec bench/main.exe -- scale

bench-scale-quick:
	ORQ_SCALE_QUICK=1 dune exec bench/main.exe -- scale

# Foreground query service on $(ORQ_SOCKET); query it with
#   dune exec bin/orq_cli.exe -- query --socket $(ORQ_SOCKET) "SELECT ..."
serve:
	dune exec bin/orq_cli.exe -- serve --socket $(ORQ_SOCKET) --sf $(ORQ_SF) -v

# Closed-loop service throughput sweep over (protocol, workers,
# concurrency, cache mode); refreshes BENCH_service.json. Cold cells run
# LAN-paced (workers hold their slot for the query's modeled network
# time) and every cold response is checked byte-identical against the
# serial workers=1 reference; exits nonzero if 8-worker cold throughput
# is below 4x the single worker. ORQ_SERVICE_QUICK=1 shrinks it to a
# workers 1-vs-4 gate (>= 2x) in a few seconds.
bench-service:
	dune exec bench/service.exe

bench-service-quick:
	ORQ_SERVICE_QUICK=1 dune exec bench/service.exe

# Forked local 3-party cluster on loopback TCP — real OS processes
# exchanging real framed messages — running demo queries and printing
# metered-vs-measured wire traffic (see DESIGN.md "Real multi-party
# deployment"). Use `orq_cli party --id k --peers ...` for the manual
# N-terminal version.
party-demo:
	dune exec bin/orq_cli.exe -- party --local -p sh-hm

# Real-deployment audit: for each protocol, fork a complete party
# cluster on loopback TCP (2/3/4 processes) and push the SQL suite
# through it, asserting every response and every measured wire counter
# byte-identical to the in-process simulation; refreshes BENCH_net.json.
# ORQ_NET_QUICK=1 runs a 3-query subset per protocol in seconds.
bench-net:
	dune exec bench/net.exe

bench-net-quick:
	ORQ_NET_QUICK=1 dune exec bench/net.exe

clean:
	dune clean
