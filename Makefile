# Convenience wrapper; everything below is plain dune.

.PHONY: check build test kernels-smoke bench bench-rounds bench-bitpack bench-service serve clean

# Query-service knobs (flags win; see DESIGN.md "Query service")
ORQ_SOCKET ?= /tmp/orq-service.sock
ORQ_SF ?= 0.001

check: build test kernels-smoke

build:
	dune build

test:
	dune runtest

# Quick micro-kernel benchmark at 2 domains: exercises the pool dispatch
# path end to end and refreshes BENCH_kernels.json (quick sizes, ~10s).
kernels-smoke:
	ORQ_KERNELS_QUICK=1 dune exec bench/main.exe -- micro-kernels --domains 2

bench:
	dune exec bench/main.exe

# Round-fusion audit: every query fused vs ORQ_NO_FUSION=1, asserting
# byte-identical traffic and plaintext-validated results; refreshes
# BENCH_rounds.json. ORQ_ROUNDS_QUICK=1 runs a representative subset.
bench-rounds:
	dune exec bench/main.exe -- rounds --sf 0.0002 --n 400

# Bit-packed flag-lane audit: packed-vs-word micro speedup (>= 8x gate),
# end-to-end sort/group-by wall clock, and the full query suite with
# packing on vs off asserting identical values and traffic; refreshes
# BENCH_bitpack.json. ORQ_BITPACK_QUICK=1 runs a representative subset.
bench-bitpack:
	dune exec bench/main.exe -- bitpack

# Foreground query service on $(ORQ_SOCKET); query it with
#   dune exec bin/orq_cli.exe -- query --socket $(ORQ_SOCKET) "SELECT ..."
serve:
	dune exec bin/orq_cli.exe -- serve --socket $(ORQ_SOCKET) --sf $(ORQ_SF) -v

# Closed-loop service throughput sweep; refreshes BENCH_service.json.
# ORQ_SERVICE_QUICK=1 shrinks it to a few seconds.
bench-service:
	dune exec bench/service.exe

clean:
	dune clean
