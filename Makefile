# Convenience wrapper; everything below is plain dune.

.PHONY: check build test kernels-smoke bench clean

check: build test kernels-smoke

build:
	dune build

test:
	dune runtest

# Quick micro-kernel benchmark at 2 domains: exercises the pool dispatch
# path end to end and refreshes BENCH_kernels.json (quick sizes, ~10s).
kernels-smoke:
	ORQ_KERNELS_QUICK=1 dune exec bench/main.exe -- micro-kernels --domains 2

bench:
	dune exec bench/main.exe

clean:
	dune clean
