(** Bechamel micro-benchmarks of the core secure primitives and operators —
    one [Test.make] per building block, reported as ns/op of the lockstep
    simulation (all parties' local compute). *)

open Bechamel
open Toolkit
open Orq_proto

let n = 1024

let with_ctx kind f =
  Staged.stage (fun () ->
      let ctx = Ctx.create ~seed:3 kind in
      f ctx)

let vec ctx = Orq_util.Prg.words ctx.Ctx.prg n

let tests =
  [
    Test.make ~name:"mul[sh-hm]"
      (with_ctx Ctx.Sh_hm (fun ctx ->
           let x = Mpc.share_a ctx (vec ctx) in
           ignore (Mpc.mul ctx x x)));
    Test.make ~name:"mul[sh-dm]"
      (with_ctx Ctx.Sh_dm (fun ctx ->
           let x = Mpc.share_a ctx (vec ctx) in
           ignore (Mpc.mul ctx x x)));
    Test.make ~name:"mul[mal-hm]"
      (with_ctx Ctx.Mal_hm (fun ctx ->
           let x = Mpc.share_a ctx (vec ctx) in
           ignore (Mpc.mul ctx x x)));
    Test.make ~name:"and[sh-hm]"
      (with_ctx Ctx.Sh_hm (fun ctx ->
           let x = Mpc.share_b ctx (vec ctx) in
           ignore (Mpc.band ctx x x)));
    Test.make ~name:"eq32"
      (with_ctx Ctx.Sh_hm (fun ctx ->
           let x = Mpc.share_b ctx (vec ctx) in
           let y = Mpc.share_b ctx (vec ctx) in
           ignore (Orq_circuits.Compare.eq ctx ~w:32 x y)));
    Test.make ~name:"lt32"
      (with_ctx Ctx.Sh_hm (fun ctx ->
           let x = Mpc.share_b ctx (vec ctx) in
           let y = Mpc.share_b ctx (vec ctx) in
           ignore (Orq_circuits.Compare.lt ctx ~w:32 x y)));
    Test.make ~name:"add32 (Kogge-Stone)"
      (with_ctx Ctx.Sh_hm (fun ctx ->
           let x = Mpc.share_b ctx (vec ctx) in
           let y = Mpc.share_b ctx (vec ctx) in
           ignore (Orq_circuits.Adder.add ctx ~w:32 x y)));
    Test.make ~name:"b2a32"
      (with_ctx Ctx.Sh_hm (fun ctx ->
           let x = Mpc.share_b ctx (vec ctx) in
           ignore (Orq_circuits.Convert.b2a ~w:32 ctx x)));
    Test.make ~name:"a2b32"
      (with_ctx Ctx.Sh_hm (fun ctx ->
           let x = Mpc.share_a ctx (vec ctx) in
           ignore (Orq_circuits.Convert.a2b ~w:32 ctx x)));
    Test.make ~name:"shuffle"
      (with_ctx Ctx.Sh_hm (fun ctx ->
           let x = Mpc.share_b ctx (vec ctx) in
           ignore (Orq_shuffle.Permops.shuffle ctx x)));
    Test.make ~name:"genBitPerm"
      (with_ctx Ctx.Sh_hm (fun ctx ->
           let b = Mpc.and_mask (Mpc.share_b ctx (vec ctx)) 1 in
           ignore (Orq_sort.Genbitperm.gen ctx b)));
    Test.make ~name:"radixsort16 n=1024"
      (with_ctx Ctx.Sh_hm (fun ctx ->
           let x =
             Mpc.share_b ctx
               (Array.init n (fun _ ->
                    Orq_util.Prg.int_below ctx.Ctx.prg 65536))
           in
           ignore (Orq_sort.Radixsort.sort ctx ~bits:16 x [])));
    Test.make ~name:"quicksort16 n=1024"
      (with_ctx Ctx.Sh_hm (fun ctx ->
           let x =
             Mpc.share_b ctx
               (Array.init n (fun _ ->
                    Orq_util.Prg.int_below ctx.Ctx.prg 65536))
           in
           ignore
             (Orq_sort.Sortwrap.sort ctx ~algo:Orq_sort.Sortwrap.Quicksort
                ~dir:Orq_sort.Sortwrap.Asc ~w:16 x [])));
  ]

let run () =
  Bench_util.section "Bechamel micro-benchmarks (ns per op, n=1024 vectors)";
  let ols =
    Analyze.ols ~bootstrap:0 ~r_square:true ~predictors:[| Measure.run |]
  in
  let instances = Instance.[ monotonic_clock ] in
  let cfg =
    Benchmark.cfg ~limit:50 ~quota:(Time.second 0.5) ~kde:(Some 10) ()
  in
  List.iter
    (fun test ->
      let results =
        Benchmark.all cfg instances (Test.make_grouped ~name:"g" [ test ])
      in
      let results = Analyze.all ols (Instance.monotonic_clock) results in
      Hashtbl.iter
        (fun name ols_result ->
          match Analyze.OLS.estimates ols_result with
          | Some [ est ] ->
              Bench_util.row "%-28s %12.0f ns/op" name est
          | _ -> Bench_util.row "%-28s %12s" name "n/a")
        results)
    tests
