(** Cross-lane round-fusion benchmark: every workload query runs twice —
    fusion on and off ([Mpc.set_fusion]) — under identical seeds, checking
    that [bits] and [messages] are byte-identical in both modes (fusion
    must only merge rounds, never change traffic), that both modes match
    the plaintext reference, and reporting the round reduction plus the
    modeled LAN/WAN/geo network-time deltas. Writes BENCH_rounds.json.

    Quick mode (ORQ_ROUNDS_QUICK=1) restricts to the headline queries. *)

open Orq_proto
open Orq_workloads
open Bench_util
module Comm = Orq_net.Comm
module Netsim = Orq_net.Netsim
module Joincost = Orq_core.Joincost

let chosen_joins () =
  List.map
    (fun (d : Joincost.decision) -> Joincost.op_label d.Joincost.jd_chosen)
    (Joincost.log ())

type qrow = {
  r_name : string;
  r_fused : Comm.tally;
  r_unfused : Comm.tally;
  r_ok_fused : bool;
  r_ok_unfused : bool;
  r_joins : string list;
      (** physical join operator run at each join node (Joincost log) *)
}

(* The queries the fusion work targets (multi-leg filters, aggregation
   networks, batched finishes). *)
let targets =
  [ "Q1"; "Q4"; "Q6"; "Q12"; "Q13"; "Q19"; "Aspirin"; "Comorbidity" ]

let with_fusion fused f =
  let prev = Mpc.fusion_enabled () in
  Mpc.set_fusion fused;
  Fun.protect ~finally:(fun () -> Mpc.set_fusion prev) f

let run_tpch kind plain (q : Tpch.query) ~fused =
  with_fusion fused (fun () ->
      Joincost.reset_log ();
      let ctx = Ctx.create ~seed:5 kind in
      let mdb = Tpch_gen.share ctx plain in
      let before = Comm.snapshot ctx.Ctx.comm in
      let ok, _, _ = Tpch.validate q plain mdb in
      (ok, Comm.since ctx.Ctx.comm before, chosen_joins ()))

let run_other kind oplain (q : Other_queries.query) ~fused =
  with_fusion fused (fun () ->
      Joincost.reset_log ();
      let ctx = Ctx.create ~seed:13 kind in
      let mdb = Other_gen.share ctx oplain in
      let before = Comm.snapshot ctx.Ctx.comm in
      let ok, _, _ = Other_queries.validate q oplain mdb in
      (ok, Comm.since ctx.Ctx.comm before, chosen_joins ()))

let reduction_pct (r : qrow) =
  if r.r_unfused.Comm.t_rounds = 0 then 0.
  else
    100.
    *. float_of_int (r.r_unfused.Comm.t_rounds - r.r_fused.Comm.t_rounds)
    /. float_of_int r.r_unfused.Comm.t_rounds

let profiles = [ ("lan", Netsim.lan); ("wan", Netsim.wan); ("geo", Netsim.geo) ]

let json_of_row (r : qrow) =
  let net =
    String.concat ","
      (List.map
         (fun (lbl, p) ->
           Printf.sprintf
             "\"%s\":{\"fused_s\":%.6f,\"unfused_s\":%.6f}" lbl
             (Netsim.network_time p r.r_fused)
             (Netsim.network_time p r.r_unfused))
         profiles)
  in
  Printf.sprintf
    "    {\"name\":\"%s\",\"rounds_fused\":%d,\"rounds_unfused\":%d,\
     \"reduction_pct\":%.1f,\"bits\":%d,\"messages\":%d,\
     \"bits_match\":%b,\"ok_fused\":%b,\"ok_unfused\":%b,\"joins\":[%s],\
     \"net\":{%s}}"
    r.r_name r.r_fused.Comm.t_rounds r.r_unfused.Comm.t_rounds
    (reduction_pct r) r.r_fused.Comm.t_bits r.r_fused.Comm.t_messages
    (r.r_fused.Comm.t_bits = r.r_unfused.Comm.t_bits
    && r.r_fused.Comm.t_messages = r.r_unfused.Comm.t_messages)
    r.r_ok_fused r.r_ok_unfused
    (String.concat "," (List.map (Printf.sprintf "\"%s\"") r.r_joins))
    net

let run ~sf ~other_n () =
  let quick =
    match Sys.getenv_opt "ORQ_ROUNDS_QUICK" with
    | Some ("1" | "true" | "yes" | "on") -> true
    | _ -> false
  in
  let kind = Ctx.Sh_hm in
  section
    (Printf.sprintf
       "Round fusion: per-query rounds fused vs unfused (%s, TPC-H @ SF=%g, \
        others @ n=%d%s)"
       (Ctx.kind_label kind) sf other_n
       (if quick then ", quick" else ""))
  ;
  (* dataset seeds match the validation suite's: every query is known to
     be non-degenerate (nonempty result) at these sizes *)
  let plain = Tpch_gen.generate ~seed:99 sf in
  let oplain = Other_gen.generate ~seed:31 other_n in
  let keep name = (not quick) || List.mem name targets in
  let rows =
    List.filter_map
      (fun (q : Tpch.query) ->
        if not (keep q.Tpch.name) then None
        else
          let ok_f, f, joins = run_tpch kind plain q ~fused:true in
          let ok_u, u, _ = run_tpch kind plain q ~fused:false in
          Some
            {
              r_name = q.Tpch.name;
              r_fused = f;
              r_unfused = u;
              r_ok_fused = ok_f;
              r_ok_unfused = ok_u;
              r_joins = joins;
            })
      Tpch.all
    @ List.filter_map
        (fun (q : Other_queries.query) ->
          if not (keep q.Other_queries.name) then None
          else
            let ok_f, f, joins = run_other kind oplain q ~fused:true in
            let ok_u, u, _ = run_other kind oplain q ~fused:false in
            Some
              {
                r_name = q.Other_queries.name;
                r_fused = f;
                r_unfused = u;
                r_ok_fused = ok_f;
                r_ok_unfused = ok_u;
                r_joins = joins;
              })
        Other_queries.all
  in
  hdr "%-14s %9s %9s %7s %12s %6s %10s %10s  %s" "query" "rounds" "fused"
    "cut%" "bits" "b/m=" "WAN-net" "WAN-fused" "joins";
  List.iter
    (fun r ->
      hdr "%-14s %9d %9d %6.1f%% %12d %6s %10s %10s  %s" r.r_name
        r.r_unfused.Comm.t_rounds r.r_fused.Comm.t_rounds (reduction_pct r)
        r.r_fused.Comm.t_bits
        (if
           r.r_fused.Comm.t_bits = r.r_unfused.Comm.t_bits
           && r.r_fused.Comm.t_messages = r.r_unfused.Comm.t_messages
         then "yes"
         else "NO")
        (pretty_time (Netsim.network_time Netsim.wan r.r_unfused))
        (pretty_time (Netsim.network_time Netsim.wan r.r_fused))
        (String.concat "," r.r_joins))
    rows;
  let bad_traffic =
    List.filter
      (fun r ->
        r.r_fused.Comm.t_bits <> r.r_unfused.Comm.t_bits
        || r.r_fused.Comm.t_messages <> r.r_unfused.Comm.t_messages)
      rows
  in
  let bad_valid =
    List.filter (fun r -> not (r.r_ok_fused && r.r_ok_unfused)) rows
  in
  let hit =
    List.filter
      (fun r -> List.mem r.r_name targets && reduction_pct r >= 30.)
      rows
  in
  hdr "\ntarget queries with >=30%% round reduction: %d/%d"
    (List.length hit)
    (List.length (List.filter (fun r -> List.mem r.r_name targets) rows));
  if bad_traffic <> [] then
    hdr "TRAFFIC MISMATCH (fusion must not change bits/messages): %s"
      (String.concat ", " (List.map (fun r -> r.r_name) bad_traffic));
  if bad_valid <> [] then
    hdr "VALIDATION FAILURES: %s"
      (String.concat ", " (List.map (fun r -> r.r_name) bad_valid));
  let oc = open_out "BENCH_rounds.json" in
  Printf.fprintf oc
    "{\n  \"protocol\": \"%s\",\n  \"sf\": %g,\n  \"other_n\": %d,\n\
    \  \"quick\": %b,\n  \"queries\": [\n%s\n  ],\n\
    \  \"targets_with_30pct\": %d\n}\n"
    (Ctx.kind_label kind) sf other_n quick
    (String.concat ",\n" (List.map json_of_row rows))
    (List.length hit);
  close_out oc;
  hdr "wrote BENCH_rounds.json";
  if bad_traffic <> [] || bad_valid <> [] then exit 1
