(** Bit-packed flag-lane benchmark: measures the packed single-bit share
    representation ([Share.flags], 63 flags/word) against the width-1 word
    primitives it replaces, end to end and at the kernel level, and gates
    the packing invariant over the full query suite. Three parts:

    - micro: packed [band_f]/[xor_f] vs word [band ~width:1]/[xor] at
      n = 2^20 — the acceptance bar is >= 8x lower ns/element on the
      interactive AND;
    - end-to-end: a quicksort and a group-by aggregation run with packing
      on and off ([Mpc.set_bitpack]) under identical seeds — wall-clock
      delta plus identical reconstructed outputs and identical
      bits/messages/rounds;
    - suite gate: every TPC-H + non-TPC-H query runs in both modes; any
      value or traffic divergence (packing must only change local work)
      fails the run with exit 1.

    Writes BENCH_bitpack.json. Quick mode (ORQ_BITPACK_QUICK=1) shrinks
    the micro size and restricts the suite to the headline queries. *)

open Orq_util
open Orq_proto
open Orq_workloads
open Bench_util
module Comm = Orq_net.Comm

let quick () =
  match Sys.getenv_opt "ORQ_BITPACK_QUICK" with
  | Some ("1" | "true" | "yes" | "on") -> true
  | _ -> false

let with_bitpack on f =
  let prev = Mpc.bitpack_enabled () in
  Mpc.set_bitpack on;
  Fun.protect ~finally:(fun () -> Mpc.set_bitpack prev) f

(* ---- micro: per-element cost of the flag primitives ---- *)

(* Best-of-3 timed blocks (same scheme as the kernels bench): ns/element. *)
let measure ~n (f : unit -> unit) : float =
  f ();
  let t0 = Unix.gettimeofday () in
  f ();
  let once = Unix.gettimeofday () -. t0 in
  let target = if quick () then 0.02 else 0.08 in
  let iters = max 3 (min 2000 (int_of_float (target /. max 1e-6 once))) in
  let best = ref infinity in
  for _rep = 1 to 3 do
    let t0 = Unix.gettimeofday () in
    for _ = 1 to iters do
      f ()
    done;
    let dt = Unix.gettimeofday () -. t0 in
    if dt < !best then best := dt
  done;
  !best /. float_of_int iters /. float_of_int n *. 1e9

type micro = {
  m_op : string;
  m_n : int;
  m_packed_ns : float;
  m_word_ns : float;
}

let micro_speedup m =
  if m.m_packed_ns > 0. then m.m_word_ns /. m.m_packed_ns else nan

let run_micro () =
  let n = if quick () then 1 lsl 17 else 1 lsl 20 in
  let kind = Ctx.Sh_hm in
  let ctx = Ctx.create ~seed:21 kind in
  let bits seed = Array.init n (fun i -> ((i * 73) lxor seed) land 1) in
  let x = Mpc.share_b ctx (bits 1) and y = Mpc.share_b ctx (bits 2) in
  let xf = Share.pack_flags x and yf = Share.pack_flags y in
  let rows =
    [
      {
        m_op = "band1";
        m_n = n;
        m_packed_ns =
          measure ~n (fun () -> ignore (Mpc.band_f ctx xf yf));
        m_word_ns =
          measure ~n (fun () -> ignore (Mpc.band ~width:1 ctx x y));
      };
      {
        m_op = "xor1";
        m_n = n;
        m_packed_ns = measure ~n (fun () -> ignore (Mpc.xor_f xf yf));
        m_word_ns = measure ~n (fun () -> ignore (Mpc.xor x y));
      };
      {
        m_op = "open1";
        m_n = n;
        m_packed_ns = measure ~n (fun () -> ignore (Mpc.open_f ctx xf));
        m_word_ns =
          measure ~n (fun () -> ignore (Mpc.open_ ~width:1 ctx x));
      };
    ]
  in
  List.iter
    (fun m ->
      row "  %-6s n=%-8d packed %8.3f ns/elt   word %8.3f ns/elt   %6.1fx"
        m.m_op m.m_n m.m_packed_ns m.m_word_ns (micro_speedup m))
    rows;
  rows

(* ---- end to end: sort + group-by, packing on vs off ---- *)

type e2e = {
  e_name : string;
  e_packed_s : float;
  e_word_s : float;
  e_tally : Comm.tally;
  e_values_match : bool;
  e_tally_match : bool;
}

(* Run [f] (fresh ctx inside) in mode [on]; returns values, tally, secs. *)
let run_mode kind seed on (f : Ctx.t -> int array list) =
  with_bitpack on (fun () ->
      let ctx = Ctx.create ~seed kind in
      let before = Comm.snapshot ctx.Ctx.comm in
      let t0 = Unix.gettimeofday () in
      let vs = f ctx in
      let dt = Unix.gettimeofday () -. t0 in
      (vs, Comm.since ctx.Ctx.comm before, dt))

let e2e_case kind name seed f =
  let vp, tp, sp = run_mode kind seed true f in
  let vw, tw, sw = run_mode kind seed false f in
  {
    e_name = name;
    e_packed_s = sp;
    e_word_s = sw;
    e_tally = tp;
    e_values_match = vp = vw;
    e_tally_match = tp = tw;
  }

let run_e2e () =
  let kind = Ctx.Sh_hm in
  let n = if quick () then 1024 else 4096 in
  let sort_case =
    e2e_case kind (Printf.sprintf "quicksort n=%d" n) 7 (fun ctx ->
        let keys = Array.init n (fun i -> (i * 2654435761) mod n) in
        (* make the keys a permutation: fall back to index where the hash
           collides, keeping them unique as quicksort requires *)
        let seen = Hashtbl.create n in
        let keys =
          Array.mapi
            (fun i k ->
              let k = if Hashtbl.mem seen k then i else k in
              Hashtbl.replace seen k ();
              k)
            keys
        in
        let carry = Array.init n (fun i -> i) in
        let module Q = Orq_sort.Quicksort in
        let ks, cs =
          Q.sort ctx
            ~keys:
              [
                {
                  Q.col = Mpc.share_b ctx keys;
                  width = Ring.log2_ceil n + 1;
                  dir = Q.Asc;
                };
              ]
            [ Mpc.share_b ctx carry ]
        in
        List.map Share.reconstruct (ks @ cs))
  in
  let agg_case =
    e2e_case kind (Printf.sprintf "group-by n=%d" n) 9 (fun ctx ->
        let keys = Array.init n (fun i -> i / 8) in
        let vals = Array.init n (fun i -> (i * 31) mod 1000) in
        let kc = Mpc.share_b ctx keys in
        let module A = Orq_core.Aggnet in
        let out =
          A.run ctx
            ~keys:[ (kc, Ring.log2_ceil (n / 8) + 1) ]
            [
              { A.col = Mpc.share_a ctx vals; func = A.Sum; keys = A.Group;
                width = 16 };
              { A.col = Mpc.share_b ctx vals; func = A.Min 10; keys = A.Group;
                width = 10 };
            ]
        in
        List.map Share.reconstruct out)
  in
  let rows = [ sort_case; agg_case ] in
  List.iter
    (fun e ->
      row "  %-18s packed %8.4fs   word %8.4fs   %5.2fx   values=%s tally=%s"
        e.e_name e.e_packed_s e.e_word_s
        (if e.e_packed_s > 0. then e.e_word_s /. e.e_packed_s else nan)
        (if e.e_values_match then "ok" else "MISMATCH")
        (if e.e_tally_match then "ok" else "MISMATCH"))
    rows;
  rows

(* ---- suite gate: every query, packing on vs off ---- *)

type qrow = {
  q_name : string;
  q_packed : Comm.tally;
  q_word : Comm.tally;
  q_ok_packed : bool;
  q_ok_word : bool;
  q_packed_s : float;
  q_word_s : float;
}

let q_match (r : qrow) = r.q_packed = r.q_word && r.q_ok_packed && r.q_ok_word

let targets =
  [ "Q1"; "Q4"; "Q6"; "Q12"; "Q13"; "Q19"; "Aspirin"; "Comorbidity" ]

let run_suite () =
  let kind = Ctx.Sh_hm in
  (* the sizes the rounds audit runs at (Makefile / CI): every query is
     known to be non-degenerate (nonempty aggregates) at these seeds *)
  let sf = 0.0002 and other_n = 400 in
  let plain = Tpch_gen.generate ~seed:99 sf in
  let oplain = Other_gen.generate ~seed:31 other_n in
  let keep name = (not (quick ())) || List.mem name targets in
  (* wall-clock covers the query only, not the dataset sharing *)
  let tpch_mode (q : Tpch.query) on =
    with_bitpack on (fun () ->
        let ctx = Ctx.create ~seed:5 kind in
        let mdb = Tpch_gen.share ctx plain in
        let before = Comm.snapshot ctx.Ctx.comm in
        let t0 = Unix.gettimeofday () in
        let ok, _, _ = Tpch.validate q plain mdb in
        (ok, Comm.since ctx.Ctx.comm before, Unix.gettimeofday () -. t0))
  in
  let other_mode (q : Other_queries.query) on =
    with_bitpack on (fun () ->
        let ctx = Ctx.create ~seed:13 kind in
        let mdb = Other_gen.share ctx oplain in
        let before = Comm.snapshot ctx.Ctx.comm in
        let t0 = Unix.gettimeofday () in
        let ok, _, _ = Other_queries.validate q oplain mdb in
        (ok, Comm.since ctx.Ctx.comm before, Unix.gettimeofday () -. t0))
  in
  let rows =
    List.filter_map
      (fun (q : Tpch.query) ->
        if not (keep q.Tpch.name) then None
        else
          let ok_p, p, sp = tpch_mode q true in
          let ok_w, w, sw = tpch_mode q false in
          Some
            { q_name = q.Tpch.name; q_packed = p; q_word = w;
              q_ok_packed = ok_p; q_ok_word = ok_w; q_packed_s = sp;
              q_word_s = sw })
      Tpch.all
    @ List.filter_map
        (fun (q : Other_queries.query) ->
          if not (keep q.Other_queries.name) then None
          else
            let ok_p, p, sp = other_mode q true in
            let ok_w, w, sw = other_mode q false in
            Some
              { q_name = q.Other_queries.name; q_packed = p; q_word = w;
                q_ok_packed = ok_p; q_ok_word = ok_w; q_packed_s = sp;
                q_word_s = sw })
        Other_queries.all
  in
  hdr "%-14s %12s %9s %6s %6s %9s %9s %6s" "query" "bits" "rounds" "b/m/r="
    "valid" "packed" "word" "x";
  List.iter
    (fun r ->
      hdr "%-14s %12d %9d %6s %6s %8.3fs %8.3fs %5.2fx" r.q_name
        r.q_packed.Comm.t_bits r.q_packed.Comm.t_rounds
        (if r.q_packed = r.q_word then "yes" else "NO")
        (if r.q_ok_packed && r.q_ok_word then "ok" else "FAIL")
        r.q_packed_s r.q_word_s
        (if r.q_packed_s > 0. then r.q_word_s /. r.q_packed_s else nan))
    rows;
  rows

let json_of_qrow (r : qrow) =
  Printf.sprintf
    "    {\"name\":\"%s\",\"bits\":%d,\"messages\":%d,\"rounds\":%d,\
     \"tally_match\":%b,\"ok_packed\":%b,\"ok_word\":%b,\
     \"packed_s\":%.6f,\"word_s\":%.6f}"
    r.q_name r.q_packed.Comm.t_bits r.q_packed.Comm.t_messages
    r.q_packed.Comm.t_rounds
    (r.q_packed = r.q_word)
    r.q_ok_packed r.q_ok_word r.q_packed_s r.q_word_s

let run () =
  section
    (Printf.sprintf "bit-packed flag lanes: packed vs word-per-flag%s"
       (if quick () then " (quick)" else ""));
  hdr "micro (Sh-HM, interactive AND draws randomness per word):";
  let micros = run_micro () in
  hdr "\nend to end, packing on vs off (identical seeds):";
  let e2es = run_e2e () in
  hdr "\nquery suite gate (values + bits/messages/rounds must match):";
  let qrows = run_suite () in
  let band = List.find (fun m -> m.m_op = "band1") micros in
  let band_speedup = micro_speedup band in
  let bad_e2e = List.filter (fun e -> not (e.e_values_match && e.e_tally_match)) e2es in
  let bad_q = List.filter (fun r -> not (q_match r)) qrows in
  (* the acceptance bar: interactive AND at least 8x cheaper per element *)
  let micro_pass = band_speedup >= 8.0 in
  let suite_packed_s =
    List.fold_left (fun a r -> a +. r.q_packed_s) 0. qrows
  in
  let suite_word_s = List.fold_left (fun a r -> a +. r.q_word_s) 0. qrows in
  hdr "\nsummary: band1 packed speedup %.1fx (gate: >= 8x %s); %d/%d \
       queries identical; suite wall clock packed %.2fs vs word %.2fs \
       (%.2fx)"
    band_speedup
    (if micro_pass then "PASS" else "FAIL")
    (List.length qrows - List.length bad_q)
    (List.length qrows) suite_packed_s suite_word_s
    (if suite_packed_s > 0. then suite_word_s /. suite_packed_s else nan);
  if bad_e2e <> [] then
    hdr "END-TO-END MISMATCH: %s"
      (String.concat ", " (List.map (fun e -> e.e_name) bad_e2e));
  if bad_q <> [] then
    hdr "QUERY MISMATCH (packing must not change values or traffic): %s"
      (String.concat ", " (List.map (fun r -> r.q_name) bad_q));
  let oc = open_out "BENCH_bitpack.json" in
  let pf fmt = Printf.fprintf oc fmt in
  pf "{\n  \"schema\": \"orq-bitpack-v1\",\n  \"quick\": %b,\n" (quick ());
  pf "  \"flags_per_word\": %d,\n" Bits.bpw;
  pf "  \"micro\": [\n%s\n  ],\n"
    (String.concat ",\n"
       (List.map
          (fun m ->
            Printf.sprintf
              "    {\"op\":\"%s\",\"n\":%d,\"packed_ns_per_elt\":%.4f,\
               \"word_ns_per_elt\":%.4f,\"speedup\":%.2f}"
              m.m_op m.m_n m.m_packed_ns m.m_word_ns (micro_speedup m))
          micros));
  pf "  \"end_to_end\": [\n%s\n  ],\n"
    (String.concat ",\n"
       (List.map
          (fun e ->
            Printf.sprintf
              "    {\"name\":\"%s\",\"packed_s\":%.6f,\"word_s\":%.6f,\
               \"speedup\":%.3f,\"values_match\":%b,\"tally_match\":%b}"
              e.e_name e.e_packed_s e.e_word_s
              (if e.e_packed_s > 0. then e.e_word_s /. e.e_packed_s else nan)
              e.e_values_match e.e_tally_match)
          e2es));
  pf "  \"queries\": [\n%s\n  ],\n"
    (String.concat ",\n" (List.map json_of_qrow qrows));
  pf "  \"suite_packed_s\": %.4f,\n  \"suite_word_s\": %.4f,\n" suite_packed_s
    suite_word_s;
  pf "  \"band1_speedup_gate_8x\": %b,\n" micro_pass;
  pf "  \"suite_identical\": %b\n}\n" (bad_e2e = [] && bad_q = []);
  close_out oc;
  hdr "wrote BENCH_bitpack.json";
  if bad_e2e <> [] || bad_q <> [] || not micro_pass then exit 1
