(** State-of-the-art comparisons (Figure 5, Tables 8 and 9):

    - left: ORQ vs the Secrecy-style baseline (quadratic oblivious joins,
      bitonic sort/group-by) on the eight queries of Fig. 5 left;
    - right: ORQ vs the SecretFlow-style baseline (leaky PSI joins,
      non-vectorized execution) on S1-S5. *)

open Orq_proto
open Orq_core
open Orq_workloads
open Orq_baselines
open Bench_util
module TU = Tpch_util

(* ------------------------------------------------------------------ *)
(* Secrecy-style query variants                                        *)
(* ------------------------------------------------------------------ *)

let secrecy_comorbidity (db : Other_gen.mpc) =
  let ctx = Table.ctx db.Other_gen.m_diagnosis in
  let d =
    Secrecy_engine.nested_semi_join ctx db.Other_gen.m_diagnosis
      db.Other_gen.m_cohort ~on:[ "pid" ]
  in
  let agg =
    Secrecy_engine.group_by d ~keys:[ "diag" ]
      ~aggs:[ { Dataflow.src = "pid"; dst = "cnt"; fn = Dataflow.Count } ]
  in
  Table.take_rows (Secrecy_engine.bitonic_sort agg [ ("cnt", Tablesort.Desc) ]) 10

let secrecy_password (db : Other_gen.mpc) =
  let p = Secrecy_engine.distinct db.Other_gen.m_passwords [ "uid"; "pwd"; "site" ] in
  let agg =
    Secrecy_engine.group_by p ~keys:[ "uid"; "pwd" ]
      ~aggs:[ { Dataflow.src = "site"; dst = "nsites"; fn = Dataflow.Count } ]
  in
  let reused = Dataflow.filter agg Expr.(col "nsites" >=. const 2) in
  let users = Secrecy_engine.distinct reused [ "uid" ] in
  Dataflow.global_aggregate users
    ~aggs:[ { Dataflow.src = "uid"; dst = "reusers"; fn = Dataflow.Count } ]

let secrecy_credit (db : Other_gen.mpc) =
  let agg =
    Secrecy_engine.group_by db.Other_gen.m_credit ~keys:[ "cid" ]
      ~aggs:
        [
          { Dataflow.src = "score"; dst = "lo"; fn = Dataflow.Min };
          { Dataflow.src = "score"; dst = "hi"; fn = Dataflow.Max };
        ]
  in
  let diff =
    Dataflow.filter agg
      Expr.(col "hi" -! col "lo" >. const Other_queries.credit_delta)
  in
  Dataflow.global_aggregate diff
    ~aggs:[ { Dataflow.src = "cid"; dst = "persons"; fn = Dataflow.Count } ]

let secrecy_aspirin (db : Other_gen.mpc) =
  (* the quadratic formulation: join all (diagnosis, medication) pairs per
     patient, filter on the times, then distinct patients *)
  let ctx = Table.ctx db.Other_gen.m_diagnosis in
  let d =
    Dataflow.filter db.Other_gen.m_diagnosis
      Expr.(col "diag" ==. const Other_gen.diag_hd)
  in
  let m =
    Dataflow.filter db.Other_gen.m_medication
      Expr.(col "med" ==. const Other_gen.med_aspirin)
  in
  let j = Secrecy_engine.nested_join ctx d m ~on:[ "pid" ] in
  let j = Dataflow.filter j Expr.(col "mtime" >=. col "dtime") in
  let u = Secrecy_engine.distinct j [ "pid" ] in
  Dataflow.global_aggregate u
    ~aggs:[ { Dataflow.src = "pid"; dst = "patients"; fn = Dataflow.Count } ]

let secrecy_q4 (db : Tpch_gen.mpc) =
  let ctx = Table.ctx db.Tpch_gen.m_orders in
  let o =
    Dataflow.filter db.Tpch_gen.m_orders
      Expr.(
        col "o_orderdate" >=. const Tpch_params.q4_date
        &&. (col "o_orderdate" <. const (Tpch_params.q4_date + 90)))
  in
  let li =
    Dataflow.filter db.Tpch_gen.m_lineitem
      Expr.(col "l_commitdate" <. col "l_receiptdate")
  in
  let li = TU.select li [ ("l_orderkey", "o_orderkey") ] in
  let sem = Secrecy_engine.nested_semi_join ctx o li ~on:[ "o_orderkey" ] in
  Secrecy_engine.group_by sem ~keys:[ "o_orderpriority" ]
    ~aggs:[ { Dataflow.src = "o_orderkey"; dst = "order_count"; fn = Dataflow.Count } ]

let secrecy_q13 (db : Tpch_gen.mpc) =
  let ctx = Table.ctx db.Tpch_gen.m_orders in
  let o =
    Dataflow.filter db.Tpch_gen.m_orders
      Expr.(col "o_orderpriority" <>. const Tpch_params.q13_priority_excluded)
  in
  let c = TU.select db.Tpch_gen.m_customer [ ("c_custkey", "o_custkey") ] in
  let j = Secrecy_engine.nested_join ctx c o ~on:[ "o_custkey" ] in
  let per_cust =
    Secrecy_engine.group_by j ~keys:[ "o_custkey" ]
      ~aggs:[ { Dataflow.src = "o_orderkey"; dst = "c_count"; fn = Dataflow.Count } ]
  in
  Secrecy_engine.group_by per_cust ~keys:[ "c_count" ]
    ~aggs:[ { Dataflow.src = "c_count"; dst = "custdist"; fn = Dataflow.Count } ]

let fig5_secrecy ~sf ~other_n () =
  section
    (Printf.sprintf
       "Figure 5 (left) + Table 8: ORQ vs Secrecy baseline (SH-HM, TPC-H \
        SF=%g, others n=%d)"
       sf other_n);
  hdr "%-14s %12s %12s %10s %12s %12s" "query" "orq-LAN" "secrecy-LAN"
    "speedup" "orq-KB/row" "sec-KB/row";
  let tplain = Tpch_gen.generate ~seed:2024 sf in
  let oplain = Other_gen.generate ~seed:2025 other_n in
  let compare_q name rows orq_f sec_f =
    let run f =
      let ctx = Ctx.create ~seed:5 Ctx.Sh_hm in
      let _, m = measure ctx (fun () -> ignore (f ctx)) in
      m
    in
    let o = run orq_f in
    let s = run sec_f in
    row "%-14s %12s %12s %9.1fx %12.1f %12.1f" name
      (pretty_time (estimate Netsim.lan o))
      (pretty_time (estimate Netsim.lan s))
      (estimate Netsim.lan s /. estimate Netsim.lan o)
      (kb_per_row_per_party o ~rows)
      (kb_per_row_per_party s ~rows)
  in
  let orq_other name ctx =
    (Other_queries.find name).Other_queries.run (Other_gen.share ctx oplain)
  in
  let orq_tpch name ctx =
    (Tpch.find name).Tpch.run (Tpch_gen.share ctx tplain)
  in
  let o_rows = 4 * other_n and t_rows = Tpch_gen.total_rows tplain in
  compare_q "Q6" t_rows (orq_tpch "Q6") (orq_tpch "Q6");
  compare_q "Password" o_rows (orq_other "Password") (fun ctx ->
      secrecy_password (Other_gen.share ctx oplain));
  compare_q "Credit" o_rows (orq_other "Credit") (fun ctx ->
      secrecy_credit (Other_gen.share ctx oplain));
  compare_q "Comorbidity" o_rows (orq_other "Comorbidity") (fun ctx ->
      secrecy_comorbidity (Other_gen.share ctx oplain));
  compare_q "Aspirin" o_rows (orq_other "Aspirin") (fun ctx ->
      secrecy_aspirin (Other_gen.share ctx oplain));
  compare_q "Q4" t_rows (orq_tpch "Q4") (fun ctx ->
      secrecy_q4 (Tpch_gen.share ctx tplain));
  compare_q "Q13" t_rows (orq_tpch "Q13") (fun ctx ->
      secrecy_q13 (Tpch_gen.share ctx tplain));
  row
    "(paper: 478x-760x on join queries, 17x-42x on group-by/distinct, 3x on \
     Q6 — gaps grow with input size; Secrecy bandwidth up to two orders of \
     magnitude higher)"

(* ------------------------------------------------------------------ *)
(* SecretFlow-style variants of S1-S5                                  *)
(* ------------------------------------------------------------------ *)

(* Non-vectorized filter evaluation: one comparison round per row — the
   execution profile of an engine that cannot batch (the paper attributes
   SecretFlow's S1/S2 gap to missing parallelism). *)
let rowwise_filter (t : Table.t) (p : Expr.pred) : Table.t =
  let n = Table.nrows t in
  let bits =
    List.init n (fun i ->
        let sub =
          Table.of_columns (Table.ctx t) t.Table.name
            ~valid:(Share.sub_range t.Table.valid i 1)
            (List.map (fun (nm, c) -> (nm, Column.sub_range c i 1)) t.Table.cols)
        in
        Expr.eval_pred sub p)
  in
  Table.and_valid t (Share.concat bits)

let sf_baseline_s1 (db : Tpch_gen.mpc) =
  let li =
    rowwise_filter db.Tpch_gen.m_lineitem
      Expr.(col "l_shipdate" >=. const Tpch_params.q6_date)
  in
  let li =
    Dataflow.map li ~dst:"revenue"
      Expr.(Div_pub (col "l_extendedprice" *! (const 100 -! col "l_discount"), 100))
  in
  Dataflow.global_aggregate li
    ~aggs:[ { Dataflow.src = "revenue"; dst = "total"; fn = Dataflow.Sum } ]

let sf_baseline_s2 (db : Tpch_gen.mpc) =
  let li =
    rowwise_filter db.Tpch_gen.m_lineitem Expr.(col "l_quantity" >=. const 25)
  in
  Dataflow.global_aggregate li
    ~aggs:
      [
        { Dataflow.src = "l_quantity"; dst = "n"; fn = Dataflow.Count };
        { Dataflow.src = "l_extendedprice"; dst = "hi"; fn = Dataflow.Max };
        { Dataflow.src = "l_extendedprice"; dst = "lo"; fn = Dataflow.Min };
      ]

let sf_baseline_s3 (db : Tpch_gen.mpc) =
  let ctx = Table.ctx db.Tpch_gen.m_orders in
  let o =
    Dataflow.filter db.Tpch_gen.m_orders
      Expr.(col "o_orderdate" >=. const Tpch_params.q3_date)
  in
  let j =
    Leaky_join.inner_join ctx
      (TU.select o [ ("o_orderkey", "l_orderkey") ])
      db.Tpch_gen.m_lineitem ~on:[ "l_orderkey" ] ()
  in
  Dataflow.global_aggregate j
    ~aggs:[ { Dataflow.src = "l_extendedprice"; dst = "total"; fn = Dataflow.Sum } ]

let sf_baseline_s4 (db : Tpch_gen.mpc) =
  let ctx = Table.ctx db.Tpch_gen.m_orders in
  let j =
    Leaky_join.inner_join ctx
      (TU.select db.Tpch_gen.m_orders
         [ ("o_orderkey", "l_orderkey"); ("o_orderpriority", "o_orderpriority") ])
      db.Tpch_gen.m_lineitem
      ~on:[ "l_orderkey" ]
      ~copy:[ "o_orderpriority" ] ()
  in
  Dataflow.aggregate j ~keys:[ "o_orderpriority" ]
    ~aggs:[ { Dataflow.src = "l_quantity"; dst = "qty"; fn = Dataflow.Sum } ]

let sf_baseline_s5 (db : Tpch_gen.mpc) =
  Secrecy_engine.group_by db.Tpch_gen.m_lineitem
    ~keys:[ "l_returnflag"; "l_shipmode" ]
    ~aggs:
      [
        { Dataflow.src = "l_extendedprice"; dst = "total"; fn = Dataflow.Sum };
        { Dataflow.src = "l_extendedprice"; dst = "n"; fn = Dataflow.Count };
      ]

let fig5_secretflow ~sf () =
  section
    (Printf.sprintf
       "Figure 5 (right) + Table 9: ORQ vs SecretFlow baseline (SH-DM, SF=%g)"
       sf);
  hdr "%-6s %12s %12s %10s %14s %14s" "query" "orq-LAN" "sfl-LAN" "speedup"
    "orq-B/row" "sfl-B/row";
  let plain = Tpch_gen.generate ~seed:2024 sf in
  let rows = Tpch_gen.total_rows plain in
  let pairs =
    [
      ("S1", "S1", sf_baseline_s1);
      ("S2", "S2", sf_baseline_s2);
      ("S3", "S3", sf_baseline_s3);
      ("S4", "S4", sf_baseline_s4);
      ("S5", "S5", sf_baseline_s5);
    ]
  in
  List.iter
    (fun (label, orq_name, baseline) ->
      let run f =
        let ctx = Ctx.create ~seed:7 Ctx.Sh_dm in
        let mdb = Tpch_gen.share ctx plain in
        let _, m = measure ctx (fun () -> ignore (f mdb)) in
        m
      in
      let o = run (Secretflow_queries.find orq_name).Secretflow_queries.run in
      let s = run baseline in
      row "%-6s %12s %12s %9.1fx %14.0f %14.0f" label
        (pretty_time (estimate Netsim.lan o))
        (pretty_time (estimate Netsim.lan s))
        (estimate Netsim.lan s /. estimate Netsim.lan o)
        (kb_per_row_per_party o ~rows *. 1024.)
        (kb_per_row_per_party s ~rows *. 1024.))
    pairs;
  row
    "(paper: ORQ 58x-85x on S1/S2 (vectorization), 1.1x-1.5x on S3-S5 \
     despite SecretFlow's leakage; SecretFlow bandwidth lower on joins \
     because matches leak and later operators run locally)"
