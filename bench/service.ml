(* Closed-loop throughput benchmark of the query service (DESIGN.md,
   "Query service"): an in-process server on a Unix-domain socket, [C]
   client threads each issuing queries back-to-back, measured as
   queries/sec and per-query latency percentiles over a matrix of
   (protocol, workers, concurrency, cache mode).

   Two cache modes bracket the service:
     - cold: cache off, pace=lan — every query runs the full oblivious
       plan through the worker pool, and each worker then holds its slot
       for the query's Netsim-modeled LAN time, reproducing the paper's
       network-bound deployment. Workers overlap their queries' network
       time, so cold throughput scales near-linearly with the pool.
     - hit: cache on, no pacing — the steady state of a repeated
       dashboard workload; responses replay from the plan cache in the
       session threads, bypassing the workers entirely.

   Every cold response at every worker count is checked byte-identical
   (rows and tallies) against a serial workers=1 reference — the
   concurrency upgrade must not perturb the oblivious transcript.

   Writes BENCH_service.json. ORQ_SERVICE_QUICK=1 shrinks the matrix to
   a workers 1-vs-4 scaling gate (exits 1 below 2x); the full run gates
   8 workers at 4x. *)

module Service = Orq_service.Service
module Client = Orq_service.Client
module Wire = Orq_net.Wire

let quick () =
  match Sys.getenv_opt "ORQ_SERVICE_QUICK" with
  | Some ("0" | "") | None -> false
  | Some _ -> true

let nproc () =
  try
    let ic = Unix.open_process_in "nproc 2>/dev/null" in
    let n = try int_of_string (String.trim (input_line ic)) with _ -> 0 in
    ignore (Unix.close_process_in ic);
    n
  with _ -> 0

(* Small-table queries: their oblivious compute is a few milliseconds
   while their modeled network time (rounds x RTT) is tens of
   milliseconds — the regime the paper's deployments sit in, where the
   worker pool overlaps network time and cold throughput scales. *)
let queries =
  [|
    "SELECT n_regionkey, COUNT(*) AS n FROM nation GROUP BY n_regionkey";
    "SELECT s_nationkey, COUNT(*) AS n FROM supplier GROUP BY s_nationkey";
    "SELECT r_regionkey, COUNT(*) AS n FROM region GROUP BY r_regionkey";
    "SELECT n_nationkey, COUNT(*) AS n FROM nation GROUP BY n_nationkey";
  |]

let pace_profile () =
  match Sys.getenv_opt "ORQ_BENCH_PACE" with
  | Some "off" -> None
  | Some "wan" -> Some Orq_net.Netsim.wan
  | Some "geo" -> Some Orq_net.Netsim.geo
  | _ -> Some Orq_net.Netsim.lan

let pace_label () =
  match pace_profile () with
  | None -> "off"
  | Some p -> p.Orq_net.Netsim.label

type run = {
  proto : string;
  workers : int;
  concurrency : int;
  cached : bool;
  n_queries : int;
  wall_s : float;
  qps : float;
  p50_ms : float;
  p95_ms : float;
  mismatches : int;  (** cold responses differing from the w=1 reference *)
}

let percentile sorted p =
  let n = Array.length sorted in
  if n = 0 then 0.
  else sorted.(min (n - 1) (int_of_float ((float_of_int (n - 1) *. p) +. 0.5)))

(* Reference responses per (proto, sql): captured from a serial cold
   execution, compared against every later cold response. *)
let reference : (string * string, Wire.query_result) Hashtbl.t =
  Hashtbl.create 16

let check_reference ~proto sql (r : Wire.query_result) =
  match Hashtbl.find_opt reference (proto, sql) with
  | None ->
      Hashtbl.replace reference (proto, sql) r;
      0
  | Some ref_r ->
      (* whole-payload equality: rows, cols, tallies, netsim estimates *)
      if r = ref_r then 0 else 1

let with_server ~sf ~proto ~workers ~cached f =
  let socket_path =
    Filename.concat
      (Filename.get_temp_dir_name ())
      (Printf.sprintf "orq-bench-%d-%d-%b.sock" (Unix.getpid ()) workers
         cached)
  in
  let kind =
    match Service.proto_of_label proto with
    | Ok k -> k
    | Error m -> failwith m
  in
  let cfg =
    {
      (Service.default_config ~socket_path ()) with
      Service.sf;
      workers;
      cache_capacity = (if cached then 64 else 0);
      max_jobs = 64;
      pace = (if cached then None else pace_profile ());
      prewarm = [ kind ];
    }
  in
  let srv = Service.start cfg in
  Fun.protect ~finally:(fun () -> Service.stop srv) @@ fun () ->
  f socket_path

(* One measured cell against an already-warm server. *)
let bench_cell ~proto ~workers ~cached ~concurrency ~per_client socket_path :
    run =
  let lat = Array.make (concurrency * per_client) 0. in
  let mism = Atomic.make 0 in
  let run_client ci =
    let c = Client.connect socket_path in
    Fun.protect ~finally:(fun () -> Client.close c) @@ fun () ->
    (match Client.set_protocol c proto with
    | Ok _ -> ()
    | Error m -> failwith m);
    for i = 0 to per_client - 1 do
      let sql = queries.((ci + i) mod Array.length queries) in
      let t0 = Unix.gettimeofday () in
      match Client.query c sql with
      | Ok r ->
          lat.((ci * per_client) + i) <- Unix.gettimeofday () -. t0;
          if not cached then
            if check_reference ~proto sql r > 0 then Atomic.incr mism
      | Error (_, m) -> failwith ("bench query failed: " ^ m)
    done
  in
  let t0 = Unix.gettimeofday () in
  let threads = List.init concurrency (fun ci -> Thread.create run_client ci) in
  List.iter Thread.join threads;
  let wall_s = Unix.gettimeofday () -. t0 in
  let n_queries = concurrency * per_client in
  Array.sort compare lat;
  {
    proto;
    workers;
    concurrency;
    cached;
    n_queries;
    wall_s;
    qps = float_of_int n_queries /. wall_s;
    p50_ms = percentile lat 0.5 *. 1e3;
    p95_ms = percentile lat 0.95 *. 1e3;
    mismatches = Atomic.get mism;
  }

(* Warm a server: every query once per worker-sized wave, so each worker
   builds its per-protocol backend (and the cache fills when enabled)
   before the measured window. Cold warm-up responses also seed/check the
   serial reference (the w=1 server warms first). *)
let warm ~proto ~workers ~cached socket_path =
  let wave = max workers 1 in
  let threads =
    List.init wave (fun _ ->
        Thread.create
          (fun () ->
            let c = Client.connect socket_path in
            Fun.protect ~finally:(fun () -> Client.close c) @@ fun () ->
            (match Client.set_protocol c proto with
            | Ok _ -> ()
            | Error m -> failwith m);
            Array.iter
              (fun sql ->
                match Client.query c sql with
                | Ok r ->
                    if not cached then
                      ignore (check_reference ~proto sql r : int)
                | Error (_, m) -> failwith ("warm query failed: " ^ m))
              queries)
          ())
  in
  List.iter Thread.join threads

let () =
  let sf = 0.001 in
  let q = quick () in
  let protos = if q then [ "sh-hm" ] else [ "sh-hm"; "sh-dm"; "mal-hm" ] in
  let workers_list = if q then [ 1; 4 ] else [ 1; 2; 4; 8 ] in
  let concurrencies = if q then [ 8 ] else [ 1; 4; 8; 16 ] in
  let gate_conc = if q then 8 else 16 in
  let gate_workers = if q then 4 else 8 in
  let gate_min = if q then 2.0 else 4.0 in
  let per_cold conc = max 4 (32 / conc) in
  let per_hit = if q then 20 else 50 in
  Printf.printf
    "service throughput benchmark (sf=%g, closed loop, cold pace=%s, \
     nproc=%d%s)\n\
     %!"
    sf (pace_label ()) (nproc ())
    (if q then ", quick" else "");
  Printf.printf "%-8s %3s %4s %-6s %10s %9s %9s %9s\n%!" "proto" "W" "C"
    "cache" "queries/s" "p50" "p95" "wall";
  let runs = ref [] in
  let emit r =
    runs := r :: !runs;
    Printf.printf "%-8s %3d %4d %-6s %10.1f %7.1fms %7.1fms %8.2fs%s\n%!"
      r.proto r.workers r.concurrency
      (if r.cached then "hit" else "cold")
      r.qps r.p50_ms r.p95_ms r.wall_s
      (if r.mismatches > 0 then
         Printf.sprintf "  !! %d TALLY MISMATCHES" r.mismatches
       else "")
  in
  List.iter
    (fun proto ->
      List.iter
        (fun workers ->
          (* cold: cache off, paced — one server per (proto, workers),
             all concurrency cells against it *)
          with_server ~sf ~proto ~workers ~cached:false (fun socket ->
              warm ~proto ~workers ~cached:false socket;
              List.iter
                (fun concurrency ->
                  emit
                    (bench_cell ~proto ~workers ~cached:false ~concurrency
                       ~per_client:(per_cold concurrency) socket))
                concurrencies);
          (* hit: cache on, unpaced replay from the session threads *)
          with_server ~sf ~proto ~workers ~cached:true (fun socket ->
              warm ~proto ~workers ~cached:true socket;
              List.iter
                (fun concurrency ->
                  emit
                    (bench_cell ~proto ~workers ~cached:true ~concurrency
                       ~per_client:per_hit socket))
                concurrencies))
        workers_list)
    protos;
  let runs = List.rev !runs in
  let total_mismatches = List.fold_left (fun a r -> a + r.mismatches) 0 runs in
  (* scaling summary: cold qps per worker count at the gate concurrency *)
  let cold_qps proto workers =
    match
      List.find_opt
        (fun r ->
          (not r.cached) && r.proto = proto && r.workers = workers
          && r.concurrency = gate_conc)
        runs
    with
    | Some r -> r.qps
    | None -> 0.
  in
  let speedups =
    List.map
      (fun proto ->
        let base = cold_qps proto 1 in
        let top = cold_qps proto gate_workers in
        (proto, base, top, if base > 0. then top /. base else 0.))
      protos
  in
  List.iter
    (fun (proto, base, top, s) ->
      Printf.printf
        "%-8s cold scaling @C=%d: %.1f qps (1 worker) -> %.1f qps (%d \
         workers) = %.2fx\n\
         %!"
        proto gate_conc base top gate_workers s)
    speedups;
  let oc = open_out "BENCH_service.json" in
  let pf fmt = Printf.fprintf oc fmt in
  pf "{\n  \"schema\": \"orq-service-v2\",\n";
  pf "  \"quick\": %b,\n  \"sf\": %g,\n  \"nproc\": %d,\n" q sf (nproc ());
  pf "  \"pace\": %S,\n" (pace_label ());
  pf "  \"note\": \"closed-loop qps over a Unix-domain socket; cold = full \
      oblivious execution, cache off, each worker holding its slot for the \
      query's modeled LAN time (network-bound regime: workers overlap \
      network time, so cold throughput scales with the pool on any core \
      count); hit = plan-cache replay in the session threads. Every cold \
      response is checked byte-identical (rows + tallies) against the \
      serial workers=1 reference.\",\n";
  pf "  \"tally_mismatches\": %d,\n" total_mismatches;
  pf "  \"results\": [\n";
  List.iteri
    (fun i r ->
      pf
        "    {\"proto\": %S, \"workers\": %d, \"concurrency\": %d, \
         \"cache\": %b, \"queries\": %d, \"wall_s\": %.4f, \"qps\": %.2f, \
         \"p50_ms\": %.3f, \"p95_ms\": %.3f, \"mismatches\": %d}%s\n"
        r.proto r.workers r.concurrency r.cached r.n_queries r.wall_s r.qps
        r.p50_ms r.p95_ms r.mismatches
        (if i = List.length runs - 1 then "" else ","))
    runs;
  pf "  ],\n  \"cold_scaling\": [\n";
  List.iteri
    (fun i (proto, base, top, s) ->
      pf
        "    {\"proto\": %S, \"concurrency\": %d, \"qps_w1\": %.2f, \
         \"qps_w%d\": %.2f, \"speedup\": %.3f}%s\n"
        proto gate_conc base gate_workers top s
        (if i = List.length speedups - 1 then "" else ","))
    speedups;
  pf "  ]\n}\n";
  close_out oc;
  Printf.printf "wrote BENCH_service.json (%d runs)\n%!" (List.length runs);
  if total_mismatches > 0 then begin
    Printf.eprintf
      "FAIL: %d cold responses differed from the serial reference\n"
      total_mismatches;
    exit 1
  end;
  let failed =
    List.filter (fun (_, base, _, s) -> base > 0. && s < gate_min) speedups
  in
  if failed <> [] then begin
    List.iter
      (fun (proto, _, _, s) ->
        Printf.eprintf
          "FAIL: %s cold speedup %.2fx at %d workers (need >= %.1fx)\n" proto
          s gate_workers gate_min)
      failed;
    exit 1
  end
