(* Closed-loop throughput benchmark of the query service (DESIGN.md,
   "Query service"): an in-process server on a Unix-domain socket, [C]
   client threads each issuing queries back-to-back, measured as
   queries/sec per (protocol kind, concurrency, cache mode).

   Two cache modes bracket the service:
     - cache=off: every query runs the full oblivious plan through the
       single execution worker, so throughput measures the scheduler +
       engine and does not scale with concurrency (by design — the
       serialization point later PRs will shard);
     - cache=on : the steady state of a repeated dashboard workload;
       responses replay from the plan cache, so throughput measures the
       wire protocol + session layer and does scale.

   Writes BENCH_service.json. ORQ_SERVICE_QUICK=1 shrinks iteration
   counts. *)

module Service = Orq_service.Service
module Client = Orq_service.Client

let quick () =
  match Sys.getenv_opt "ORQ_SERVICE_QUICK" with
  | Some ("0" | "") | None -> false
  | Some _ -> true

let queries =
  [|
    "SELECT o_orderpriority, COUNT(*) AS n FROM orders GROUP BY \
     o_orderpriority";
    "SELECT c_mktsegment, COUNT(*) AS n FROM customer GROUP BY c_mktsegment";
    "SELECT n_regionkey, COUNT(*) AS n FROM nation GROUP BY n_regionkey";
    "SELECT s_nationkey, COUNT(*) AS n FROM supplier GROUP BY s_nationkey";
  |]

type run = {
  proto : string;
  concurrency : int;
  cached : bool;
  n_queries : int;
  wall_s : float;
  qps : float;
}

let bench_one ~sf ~proto ~concurrency ~cached ~per_client : run =
  let socket_path =
    Filename.concat
      (Filename.get_temp_dir_name ())
      (Printf.sprintf "orq-bench-%d-%d.sock" (Unix.getpid ())
         (concurrency + if cached then 100 else 0))
  in
  let cfg =
    {
      (Service.default_config ~socket_path ()) with
      Service.sf;
      cache_capacity = (if cached then 64 else 0);
      max_jobs = (2 * concurrency) + 4;
    }
  in
  let srv = Service.start cfg in
  Fun.protect ~finally:(fun () -> Service.stop srv) @@ fun () ->
  let run_client iters =
    let c = Client.connect socket_path in
    Fun.protect ~finally:(fun () -> Client.close c) @@ fun () ->
    (match Client.set_protocol c proto with
    | Ok _ -> ()
    | Error m -> failwith m);
    for i = 0 to iters - 1 do
      match Client.query c queries.(i mod Array.length queries) with
      | Ok _ -> ()
      | Error (_, m) -> failwith ("bench query failed: " ^ m)
    done
  in
  (* warm: share the catalog for this protocol (and fill the cache when
     measuring cache hits) so the measured window is steady-state *)
  run_client (Array.length queries);
  let t0 = Unix.gettimeofday () in
  let threads =
    List.init concurrency (fun _ -> Thread.create run_client per_client)
  in
  List.iter Thread.join threads;
  let wall_s = Unix.gettimeofday () -. t0 in
  let n_queries = concurrency * per_client in
  {
    proto;
    concurrency;
    cached;
    n_queries;
    wall_s;
    qps = float_of_int n_queries /. wall_s;
  }

let () =
  let sf = 0.001 in
  let protos = [ "sh-hm"; "sh-dm"; "mal-hm" ] in
  let concurrencies = [ 1; 2; 4 ] in
  let per_cached = if quick () then 10 else 50 in
  let per_cold = if quick () then 2 else 6 in
  Printf.printf
    "service throughput benchmark (sf=%g, closed loop, single worker)\n%!" sf;
  Printf.printf "%-8s %4s %-6s %10s %9s\n%!" "proto" "C" "cache" "queries/s"
    "wall";
  let runs =
    List.concat_map
      (fun proto ->
        List.concat_map
          (fun concurrency ->
            List.map
              (fun cached ->
                let r =
                  bench_one ~sf ~proto ~concurrency ~cached
                    ~per_client:(if cached then per_cached else per_cold)
                in
                Printf.printf "%-8s %4d %-6s %10.1f %8.2fs\n%!" r.proto
                  r.concurrency
                  (if r.cached then "hit" else "cold")
                  r.qps r.wall_s;
                r)
              [ false; true ])
          concurrencies)
      protos
  in
  let oc = open_out "BENCH_service.json" in
  let pf fmt = Printf.fprintf oc fmt in
  pf "{\n  \"schema\": \"orq-service-v1\",\n";
  pf "  \"quick\": %b,\n  \"sf\": %g,\n" (quick ()) sf;
  pf "  \"note\": \"closed-loop qps over a Unix-domain socket; cold = full \
      oblivious execution through the single worker (serialized by design), \
      hit = plan-cache replay (scales with concurrency)\",\n";
  pf "  \"results\": [\n";
  List.iteri
    (fun i r ->
      pf
        "    {\"proto\": %S, \"concurrency\": %d, \"cache\": %b, \
         \"queries\": %d, \"wall_s\": %.4f, \"qps\": %.2f}%s\n"
        r.proto r.concurrency r.cached r.n_queries r.wall_s r.qps
        (if i = List.length runs - 1 then "" else ","))
    runs;
  pf "  ]\n}\n";
  close_out oc;
  Printf.printf "wrote BENCH_service.json (%d runs)\n" (List.length runs)
