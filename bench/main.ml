(** ORQ benchmark harness: regenerates every table and figure of the
    paper's evaluation (see DESIGN.md for the experiment index and
    EXPERIMENTS.md for paper-vs-measured numbers).

    Usage:
      dune exec bench/main.exe                 # everything, quick sizes
      dune exec bench/main.exe -- fig4         # one experiment
      dune exec bench/main.exe -- fig4 --sf 0.002 --n 2000   # bigger
    Experiments: fig4 fig5 fig6 fig7 fig8 fig9 fig10 fig11 fig12
                 table1 table2 table7 ablation micro micro-kernels
    Flags: --sf F (TPC-H scale), --n N (other datasets),
           --domains D (data-parallel local loops, §4; also honors the
           ORQ_DOMAINS env var — the flag wins). micro-kernels runs only
           when named explicitly and writes BENCH_kernels.json. *)

let experiments =
  [ "all"; "fig4"; "fig5"; "fig6"; "fig7"; "fig8"; "fig9"; "fig10"; "fig11";
    "fig12"; "table1"; "table2"; "table7"; "ablation"; "micro";
    "micro-kernels"; "rounds"; "bitpack"; "join"; "scale" ]

let usage () =
  Printf.printf "usage: main.exe [%s] [--sf F] [--n N]\n"
    (String.concat "|" experiments);
  exit 1

let () =
  Orq_util.Parallel.init_from_env ();
  let args = Array.to_list Sys.argv |> List.tl in
  let rec parse (cmds, sf, nn) = function
    | [] -> (cmds, sf, nn)
    | "--sf" :: v :: rest -> parse (cmds, float_of_string v, nn) rest
    | "--n" :: v :: rest -> parse (cmds, sf, int_of_string v) rest
    | "--domains" :: v :: rest ->
        Orq_util.Parallel.set_num_domains (int_of_string v);
        parse (cmds, sf, nn) rest
    | c :: rest -> parse (c :: cmds, sf, nn) rest
  in
  let cmds, sf, n = parse ([], 0.0005, 600) args in
  let cmds = if cmds = [] then [ "all" ] else List.rev cmds in
  if List.exists (fun c -> not (List.mem c experiments)) cmds then usage ();
  let sizes_small = [ 256; 512; 1024 ] in
  let sizes_scale = [ 256; 1024; 4096 ] in
  let t0 = Unix.gettimeofday () in
  let has c = List.mem c cmds || List.mem "all" cmds in
  Printf.printf
    "ORQ benchmark harness — lockstep MPC simulation; LAN/WAN/GEO times \
     are modeled as compute + rounds x RTT + bits/bandwidth (DESIGN.md).\n";
  if has "table1" then Fig_sort.table1 ();
  if has "table2" then Fig_sort.table2 ();
  if has "fig4" then Fig_queries.fig4 ~sf ~other_n:n ();
  if has "table7" then Fig_queries.table7 ~sf:(sf /. 2.) ~other_n:(n / 2) ();
  if has "fig5" then begin
    Fig_compare.fig5_secrecy ~sf:(sf /. 2.) ~other_n:(n / 2) ();
    Fig_compare.fig5_secretflow ~sf ()
  end;
  if has "fig6" then Fig_sort.fig6_table10 ~sizes:sizes_small ();
  if has "fig7" then Fig_sort.fig7_table11 ~sizes:sizes_small ();
  if has "fig8" then Fig_queries.fig8 ~sf:(sf /. 2.) ();
  if has "fig9" then Fig_queries.fig9 ~sf:(sf /. 2.) ();
  if has "fig10" then Fig_sort.fig10 ~sizes:sizes_scale ();
  if has "fig11" then Fig_sort.fig11 ~sizes:sizes_small ();
  if has "fig12" then Fig_queries.fig12 ~sf ();
  if has "ablation" then Ablation.all ~n:512 ();
  if has "micro" then Micro.run ();
  (* explicit-only: the domain sweep over 1M-element vectors is not part of
     the quick "all" pass *)
  if List.mem "micro-kernels" cmds then Kernels.run ();
  (* explicit-only: fused-vs-unfused round comparison over the query
     workloads; writes BENCH_rounds.json *)
  if List.mem "rounds" cmds then Rounds.run ~sf ~other_n:n ();
  (* out-of-core chunked streaming: overhead, budgeted big run, SF ladder;
     writes BENCH_scale.json (named explicitly, never part of "all") *)
  if List.mem "scale" cmds then Scale.run ();
  (* explicit-only: packed-vs-word flag lanes micro + end-to-end + query
     suite invariant gate; writes BENCH_bitpack.json *)
  if List.mem "bitpack" cmds then Bitpack.run ();
  (* explicit-only: physical-join operator comparison (sort vs linear vs
     quad vs cost-based auto) over the join-heavy queries; writes
     BENCH_join.json *)
  if List.mem "join" cmds then Join.run ~sf ();
  Printf.printf "\ntotal bench wall time: %.1fs\n"
    (Unix.gettimeofday () -. t0)
