(** [micro-kernels] — microbenchmark of the Vec kernel layer and the fused
    MPC hot-path kernels, across domain counts, with allocation tracking.

    Emits machine-readable [BENCH_kernels.json] (op, n, domains,
    ns/element, allocated bytes/element via [Gc.allocated_bytes]) so future
    PRs have a perf trajectory, plus "seed"-style baselines: the closure-
    based [Array.init] map2 the kernels replaced, and the unfused Beaver /
    rep3 recombination chains, for regression and allocation-ratio
    comparisons.

    Quick mode ([ORQ_KERNELS_QUICK=1], used by [make check]) shrinks sizes
    and iteration budgets to a few seconds while still exercising the
    parallel dispatch path. *)

open Orq_util

type entry = {
  op : string;
  n : int;
  domains : int;
  ns_per_elt : float;
  alloc_b_per_elt : float;
}

let quick () = Sys.getenv_opt "ORQ_KERNELS_QUICK" <> None

(* Sizes must clear 2x [Parallel.min_chunk] (= 131072) or the pool never
   splits work across domains and the multi-domain speedup rows measure
   pure dispatch overhead (< 1.0x). *)
let sizes () = if quick () then [ 131_072 ] else [ 131_072; 1_048_576 ]
let domain_counts () = if quick () then [ 1; 2 ] else [ 1; 2; 4 ]

(* Measure [f] over enough iterations for a stable per-element figure;
   returns (ns/element, allocated bytes/element). Takes the best of three
   timed blocks, each started from a collected heap — a single mean is
   easily skewed by a major-GC slice landing inside one block or by
   scheduler noise on a shared host. *)
let measure ~n (f : unit -> unit) : float * float =
  f ();
  (* warm-up: page in inputs, spin up the pool *)
  let t0 = Unix.gettimeofday () in
  f ();
  let once = Unix.gettimeofday () -. t0 in
  let target = if quick () then 0.02 else 0.08 in
  let iters = max 3 (min 2000 (int_of_float (target /. max 1e-6 once))) in
  let best = ref infinity and alloc = ref 0. in
  for _rep = 1 to 3 do
    Gc.full_major ();
    let a0 = Gc.allocated_bytes () in
    let t0 = Unix.gettimeofday () in
    for _ = 1 to iters do
      f ()
    done;
    let dt = Unix.gettimeofday () -. t0 in
    alloc := Gc.allocated_bytes () -. a0;
    if dt < !best then best := dt
  done;
  let fi = float_of_int iters and fn = float_of_int n in
  (!best /. fi /. fn *. 1e9, !alloc /. fi /. fn)

(* ---- seed-style baselines (what the kernel layer replaced) ---- *)

let naive_map2 f a b = Array.init (Array.length a) (fun i -> f a.(i) b.(i))

let naive_beaver_arith ~tc ~d ~tb ~e ~ta ~with_de =
  let add = naive_map2 ( + ) and mul = naive_map2 ( * ) in
  let open_terms = add (mul d tb) (mul e ta) in
  let base = add tc open_terms in
  if with_de then add base (mul d e) else base

let naive_rep3_arith ~xi ~yi ~xj ~yj ~alpha =
  let add = naive_map2 ( + ) and mul = naive_map2 ( * ) in
  add (add (add (mul xi yi) (mul xi yj)) (mul xj yi)) alpha

(* ---- the benchmark matrix ---- *)

let run () =
  Bench_util.section
    "micro-kernels: Vec/fused kernel throughput and allocations";
  Printf.printf
    "host: %d hardware domain(s) recommended; pool lanes under test: %s\n%!"
    (Domain.recommended_domain_count ())
    (String.concat "," (List.map string_of_int (domain_counts ())));
  let saved_domains = Parallel.get_num_domains () in
  let saved_chunk = Parallel.get_min_chunk () in
  let entries = ref [] in
  let record op n domains (ns, ab) =
    entries := { op; n; domains; ns_per_elt = ns; alloc_b_per_elt = ab } :: !entries;
    Bench_util.row "  %-22s n=%-8d domains=%d  %8.2f ns/elt  %8.2f B/elt" op n
      domains ns ab
  in
  let prg = Prg.create 0xBE7C4 in
  List.iter
    (fun n ->
      let a = Prg.words prg n
      and b = Prg.words prg n
      and c = Prg.words prg n
      and d = Prg.words prg n
      and e = Prg.words prg n in
      let perm = Orq_shuffle.Localperm.random prg n in
      let dst = Array.make n 0 in
      (* domain-count sweep over the parallelized kernels *)
      List.iter
        (fun dn ->
          Parallel.set_num_domains dn;
          record "mul" n dn (measure ~n (fun () -> ignore (Vec.mul a b)));
          record "band" n dn (measure ~n (fun () -> ignore (Vec.band a b)));
          record "add" n dn (measure ~n (fun () -> ignore (Vec.add a b)));
          record "xor" n dn (measure ~n (fun () -> ignore (Vec.xor a b)));
          record "gather" n dn (measure ~n (fun () -> ignore (Vec.gather a perm)));
          record "scatter" n dn
            (measure ~n (fun () -> ignore (Vec.scatter a perm)));
          record "apply_perm" n dn
            (measure ~n (fun () -> ignore (Parallel.apply_perm a perm)));
          record "prefix_sum" n dn
            (measure ~n (fun () -> ignore (Vec.prefix_sum a)));
          record "beaver_fused" n dn
            (measure ~n (fun () ->
                 ignore
                   (Vec.beaver_arith ~tc:a ~d:b ~tb:c ~e:d ~ta:e ~with_de:true)));
          record "rep3_fused" n dn
            (measure ~n (fun () ->
                 Array.fill dst 0 n 0;
                 Vec.rep3_arith_into dst ~xi:a ~yi:b ~xj:c ~yj:d)))
        (domain_counts ());
      (* seed-style baselines, inherently sequential: domains = 1 *)
      Parallel.set_num_domains 1;
      record "mul_seed" n 1
        (measure ~n (fun () -> ignore (naive_map2 ( * ) a b)));
      record "band_seed" n 1
        (measure ~n (fun () -> ignore (naive_map2 ( land ) a b)));
      record "beaver_unfused" n 1
        (measure ~n (fun () ->
             ignore
               (naive_beaver_arith ~tc:a ~d:b ~tb:c ~e:d ~ta:e ~with_de:true)));
      record "rep3_unfused" n 1
        (measure ~n (fun () ->
             ignore (naive_rep3_arith ~xi:a ~yi:b ~xj:c ~yj:d ~alpha:e))))
    (sizes ());
  Parallel.set_num_domains saved_domains;
  Parallel.set_min_chunk saved_chunk;
  let entries = List.rev !entries in
  (* ---- summary ratios ---- *)
  let find op n dn =
    List.find_opt (fun r -> r.op = op && r.n = n && r.domains = dn) entries
  in
  let nmax = List.fold_left max 0 (sizes ()) in
  let dmax = List.fold_left max 1 (domain_counts ()) in
  let ratio num den =
    match (num, den) with
    | Some a, Some b when b.ns_per_elt > 0. -> a.ns_per_elt /. b.ns_per_elt
    | _ -> nan
  in
  let alloc_ratio num den =
    match (num, den) with
    | Some a, Some b when b.alloc_b_per_elt > 0. ->
        a.alloc_b_per_elt /. b.alloc_b_per_elt
    | _ -> nan
  in
  let speedup_mul = ratio (find "mul" nmax 1) (find "mul" nmax dmax) in
  let speedup_band = ratio (find "band" nmax 1) (find "band" nmax dmax) in
  let reg_mul = ratio (find "mul" nmax 1) (find "mul_seed" nmax 1) in
  let reg_band = ratio (find "band" nmax 1) (find "band_seed" nmax 1) in
  let beaver_allocs =
    alloc_ratio (find "beaver_unfused" nmax 1) (find "beaver_fused" nmax 1)
  in
  let rep3_allocs =
    alloc_ratio (find "rep3_unfused" nmax 1) (find "rep3_fused" nmax 1)
  in
  Bench_util.row "summary (n=%d):" nmax;
  Bench_util.row "  mul  speedup x%d domains      %.2fx" dmax speedup_mul;
  Bench_util.row "  band speedup x%d domains      %.2fx" dmax speedup_band;
  Bench_util.row "  mul  kernel vs seed closure @1d  %.2fx slower (<1 = faster)"
    reg_mul;
  Bench_util.row "  band kernel vs seed closure @1d  %.2fx slower (<1 = faster)"
    reg_band;
  Bench_util.row "  Beaver unfused/fused allocations %.1fx" beaver_allocs;
  Bench_util.row "  rep3   unfused/fused allocations %.1fx" rep3_allocs;
  (* ---- JSON ---- *)
  let oc = open_out "BENCH_kernels.json" in
  let pf fmt = Printf.fprintf oc fmt in
  let fnum x = if Float.is_nan x then "null" else Printf.sprintf "%.4f" x in
  pf "{\n  \"schema\": \"orq-kernels-v1\",\n";
  pf "  \"quick\": %b,\n" (quick ());
  pf "  \"hardware_domains\": %d,\n" (Domain.recommended_domain_count ());
  pf "  \"summary\": {\n";
  pf "    \"speedup_mul_%dd\": %s,\n" dmax (fnum speedup_mul);
  pf "    \"speedup_band_%dd\": %s,\n" dmax (fnum speedup_band);
  pf "    \"slowdown_mul_1d_vs_seed\": %s,\n" (fnum reg_mul);
  pf "    \"slowdown_band_1d_vs_seed\": %s,\n" (fnum reg_band);
  pf "    \"alloc_ratio_beaver_unfused_over_fused\": %s,\n" (fnum beaver_allocs);
  pf "    \"alloc_ratio_rep3_unfused_over_fused\": %s\n" (fnum rep3_allocs);
  pf "  },\n  \"results\": [\n";
  List.iteri
    (fun i r ->
      pf
        "    {\"op\": %S, \"n\": %d, \"domains\": %d, \"ns_per_elt\": %s, \
         \"alloc_b_per_elt\": %s}%s\n"
        r.op r.n r.domains (fnum r.ns_per_elt) (fnum r.alloc_b_per_elt)
        (if i = List.length entries - 1 then "" else ","))
    entries;
  pf "  ]\n}\n";
  close_out oc;
  Bench_util.row "wrote BENCH_kernels.json (%d measurements)"
    (List.length entries)
