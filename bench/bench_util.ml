(** Shared benchmarking utilities: wall-clock + metered-communication
    measurement of a protocol run, and the analytic LAN/WAN/geo end-to-end
    estimates that reintroduce wire time into the lockstep simulation (see
    DESIGN.md, "Netsim cost model"). *)

open Orq_proto
module Comm = Orq_net.Comm
module Netsim = Orq_net.Netsim

type measurement = {
  wall_s : float;  (** measured local compute time of the simulation *)
  online : Comm.tally;
  preproc : Comm.tally;
  parties : int;
  peak_chunk_bytes : int;
      (** high-water mark of resident share-chunk bytes during the run
          (0 unless out-of-core streaming is on) *)
  spills : int;  (** chunk spills to disk during the run *)
  rss_peak_kb : int;  (** process VmHWM after the run, KiB *)
}

(** Run [f] under [ctx], measuring wall time and online/preprocessing
    traffic. *)
let measure (ctx : Ctx.t) (f : unit -> 'a) : 'a * measurement =
  let b_on = Comm.snapshot ctx.Ctx.comm in
  let b_pre = Comm.snapshot ctx.Ctx.preproc in
  Orq_util.Chunkvec.reset_peak ();
  let m0 = (Orq_util.Chunkvec.stats ()).Orq_util.Chunkvec.st_spills in
  let t0 = Unix.gettimeofday () in
  let x = f () in
  let wall_s = Unix.gettimeofday () -. t0 in
  ( x,
    {
      wall_s;
      online = Comm.since ctx.Ctx.comm b_on;
      preproc = Comm.since ctx.Ctx.preproc b_pre;
      parties = ctx.Ctx.parties;
      peak_chunk_bytes = Orq_util.Chunkvec.peak_live_bytes ();
      spills = (Orq_util.Chunkvec.stats ()).Orq_util.Chunkvec.st_spills - m0;
      rss_peak_kb = Orq_util.Chunkvec.rss_peak_kb ();
    } )

(** Estimated end-to-end time in a network profile: measured compute plus
    modeled online network time (rounds x RTT + bits / bandwidth). *)
let estimate (p : Netsim.profile) (m : measurement) : float =
  Netsim.estimate p ~compute_s:m.wall_s m.online

let mib (tl : Comm.tally) = float_of_int tl.Comm.t_bits /. 8. /. 1024. /. 1024.

let kb_per_row_per_party (m : measurement) ~rows =
  float_of_int m.online.Comm.t_bits
  /. 8. /. 1024.
  /. float_of_int (max 1 rows)
  /. float_of_int m.parties

(* -------- formatting -------- *)

let hdr fmt = Printf.printf (fmt ^^ "\n%!")
let row fmt = Printf.printf (fmt ^^ "\n%!")

let section title =
  Printf.printf "\n================ %s ================\n%!" title

let pretty_time s =
  if s < 1e-3 then Printf.sprintf "%.0fus" (s *. 1e6)
  else if s < 1. then Printf.sprintf "%.1fms" (s *. 1e3)
  else if s < 120. then Printf.sprintf "%.2fs" s
  else Printf.sprintf "%.1fmin" (s /. 60.)

let median l =
  let a = Array.of_list (List.sort compare l) in
  let n = Array.length a in
  if n = 0 then nan
  else if n mod 2 = 1 then a.(n / 2)
  else (a.((n / 2) - 1) +. a.(n / 2)) /. 2.

let maximum l = List.fold_left max neg_infinity l
