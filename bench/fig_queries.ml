(** Query-workload experiments:

    - Figure 4: all 31 queries at a fixed scale, 3 protocols, LAN + WAN
      estimates, with the median/max summary table;
    - Figure 8: SF-scaling ratio per TPC-H query (SH-DM, LAN);
    - Figure 9: Q12/Q21/Q22 at the larger scale in WAN, all protocols;
    - Figure 12 (Appendix E): geo-distributed estimates for five queries;
    - Table 7: bandwidth per row per party for every query and protocol. *)

open Orq_proto
open Orq_workloads
open Bench_util

type qresult = {
  q_name : string;
  q_rows : int;  (** total input rows *)
  q_m : measurement;
}

(* Run every TPC-H + prior-work query under [kind]; returns measurements. *)
let run_workload kind ~sf ~other_n : qresult list =
  let plain = Tpch_gen.generate ~seed:2024 sf in
  let tpch_rows = Tpch_gen.total_rows plain in
  let tpch =
    List.map
      (fun (q : Tpch.query) ->
        let ctx = Ctx.create ~seed:1 kind in
        let mdb = Tpch_gen.share ctx plain in
        let _, m = measure ctx (fun () -> ignore (q.Tpch.run mdb)) in
        { q_name = q.Tpch.name; q_rows = tpch_rows; q_m = m })
      Tpch.all
  in
  let oplain = Other_gen.generate ~seed:2025 other_n in
  let others =
    List.map
      (fun (q : Other_queries.query) ->
        let ctx = Ctx.create ~seed:2 kind in
        let mdb = Other_gen.share ctx oplain in
        let _, m = measure ctx (fun () -> ignore (q.Other_queries.run mdb)) in
        { q_name = q.Other_queries.name; q_rows = 4 * other_n; q_m = m })
      Other_queries.all
  in
  tpch @ others

let is_tpch r = String.length r.q_name >= 1 && r.q_name.[0] = 'Q'

let fig4 ~sf ~other_n () =
  section
    (Printf.sprintf
       "Figure 4: all 31 queries (TPC-H @ SF=%g, others @ n=%d), per protocol"
       sf other_n);
  let all_results =
    List.map
      (fun kind ->
        hdr "\n-- protocol %s --" (Ctx.kind_label kind);
        hdr "%-14s %10s %10s %10s %10s %8s" "query" "compute" "LAN-est"
          "WAN-est" "MB" "rounds";
        let results = run_workload kind ~sf ~other_n in
        List.iter
          (fun r ->
            row "%-14s %10s %10s %10s %10.2f %8d" r.q_name
              (pretty_time r.q_m.wall_s)
              (pretty_time (estimate Netsim.lan r.q_m))
              (pretty_time (estimate Netsim.wan r.q_m))
              (mib r.q_m.online) r.q_m.online.Orq_net.Comm.t_rounds)
          results;
        (kind, results))
      Ctx.all_kinds
  in
  hdr "\n-- summary (median / max end-to-end estimate) --";
  hdr "%-8s %-5s %14s %14s %14s %14s" "proto" "env" "tpch-median"
    "tpch-max" "other-median" "other-max";
  List.iter
    (fun (kind, results) ->
      let tp = List.filter is_tpch results in
      let ot = List.filter (fun r -> not (is_tpch r)) results in
      List.iter
        (fun (env, profile) ->
          let times rs = List.map (fun r -> estimate profile r.q_m) rs in
          row "%-8s %-5s %14s %14s %14s %14s" (Ctx.kind_label kind) env
            (pretty_time (median (times tp)))
            (pretty_time (maximum (times tp)))
            (pretty_time (median (times ot)))
            (pretty_time (maximum (times ot))))
        [ ("LAN", Netsim.lan); ("WAN", Netsim.wan) ])
    all_results;
  row
    "(paper @ SF1: SH-HM LAN median 4.4min max 17.4min; WAN 1.2x-6.9x over \
     LAN; same ordering across protocols)"

let fig8 ~sf () =
  section
    (Printf.sprintf
       "Figure 8: TPC-H scaling ratio (SF=%g vs SF=%g, SH-DM, LAN)" sf
       (10. *. sf));
  hdr "%-8s %12s %12s %10s %10s" "query" "small" "large" "lan-ratio"
    "cpu-ratio";
  let run at_sf (q : Tpch.query) =
    let plain = Tpch_gen.generate ~seed:2024 at_sf in
    let ctx = Ctx.create ~seed:1 Ctx.Sh_dm in
    let mdb = Tpch_gen.share ctx plain in
    let _, m = measure ctx (fun () -> ignore (q.Tpch.run mdb)) in
    m
  in
  let ratios =
    List.map
      (fun (q : Tpch.query) ->
        let small = run sf q in
        let large = run (10. *. sf) q in
        let le s = estimate Netsim.lan s in
        row "%-8s %12s %12s %9.1fx %9.1fx" q.Tpch.name
          (pretty_time (le small))
          (pretty_time (le large))
          (le large /. le small)
          (large.wall_s /. small.wall_s);
        (le large /. le small, large.wall_s /. small.wall_s))
      Tpch.all
  in
  row
    "median lan-ratio: %.1fx, median compute-ratio: %.1fx (ideal n log n \
     scaling: ~11.5x at SF1->SF10;"
    (median (List.map fst ratios))
    (median (List.map snd ratios));
  row " paper observes this trend with outliers from AggNet pow2 padding \
       (Q12 high) and round-constrained division (Q22 low))"

let fig9 ~sf () =
  section
    (Printf.sprintf "Figure 9: Q12 / Q21 / Q22 at SF=%g in WAN, all protocols"
       (10. *. sf));
  hdr "%-8s %-8s %12s %12s %8s" "query" "proto" "WAN-est" "MB" "vs-small";
  List.iter
    (fun qname ->
      let q = Tpch.find qname in
      List.iter
        (fun kind ->
          let run at_sf =
            let plain = Tpch_gen.generate ~seed:2024 at_sf in
            let ctx = Ctx.create ~seed:1 kind in
            let mdb = Tpch_gen.share ctx plain in
            let _, m = measure ctx (fun () -> ignore (q.Tpch.run mdb)) in
            m
          in
          let small = run sf in
          let large = run (10. *. sf) in
          row "%-8s %-8s %12s %12.2f %7.1fx" qname (Ctx.kind_label kind)
            (pretty_time (estimate Netsim.wan large))
            (mib large.online)
            (estimate Netsim.wan large /. estimate Netsim.wan small))
        Ctx.all_kinds)
    [ "Q12"; "Q21"; "Q22" ];
  row "(paper: Q22 ~31min, Q21 ~18h under Mal-HM at SF10 WAN; scaling \
       ratios consistent with LAN)"

let fig12 ~sf () =
  section "Figure 12 (Appendix E): geo-distributed WAN, five queries (SH-HM)";
  hdr "%-8s %12s %12s %10s" "query" "WAN-est" "GEO-est" "geo/wan";
  List.iter
    (fun qname ->
      let q = Tpch.find qname in
      let plain = Tpch_gen.generate ~seed:2024 sf in
      let ctx = Ctx.create ~seed:1 Ctx.Sh_hm in
      let mdb = Tpch_gen.share ctx plain in
      let _, m = measure ctx (fun () -> ignore (q.Tpch.run mdb)) in
      let wan = estimate Netsim.wan m and geo = estimate Netsim.geo m in
      row "%-8s %12s %12s %9.2fx" qname (pretty_time wan) (pretty_time geo)
        (geo /. wan))
    [ "Q8"; "Q9"; "Q11"; "Q12"; "Q21" ];
  row
    "(paper: geo overhead 1.7x-2.4x despite 3x RTT — rounds amortized; the \
     model reproduces the sub-RTT-ratio overhead)"

let table7 ~sf ~other_n () =
  section "Table 7: bandwidth (KB) per row per party, all queries";
  hdr "%-14s %12s %12s %12s" "query" "SH-DM" "SH-HM" "Mal-HM";
  let per_kind =
    List.map (fun kind -> run_workload kind ~sf ~other_n) Ctx.all_kinds
  in
  (match per_kind with
  | [ dm; hm; mal ] ->
      List.iter
        (fun i ->
          let d = List.nth dm i and h = List.nth hm i and m = List.nth mal i in
          row "%-14s %12.1f %12.1f %12.1f" d.q_name
            (kb_per_row_per_party d.q_m ~rows:d.q_rows)
            (kb_per_row_per_party h.q_m ~rows:h.q_rows)
            (kb_per_row_per_party m.q_m ~rows:m.q_rows))
        (List.init (List.length dm) Fun.id)
  | _ -> ());
  row
    "(paper: SH-DM ~1.8x SH-HM per party, Mal-HM ~2.8x SH-HM; e.g. Q21 \
     160/87/246 KB per row)"
