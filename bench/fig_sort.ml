(** Sorting and shuffling experiments:

    - Table 1: measured communication / rounds of the shuffle primitives
      per protocol, against the paper's closed forms;
    - Table 2 / Figure 11: hybrid radixsort vs the compose-based protocol
      of Asharov et al., LAN and WAN;
    - Figure 6 / Table 10: ORQ radixsort vs the non-parallel SBK baseline;
    - Figure 7 / Table 11: ORQ radixsort vs the MP-SPDZ-style row-wise
      baseline, per protocol;
    - Figure 10: quicksort and radixsort scalability across protocols. *)

open Orq_proto
open Bench_util
module Permops = Orq_shuffle.Permops
module Shardedperm = Orq_shuffle.Shardedperm

let rand_vec prg n bound =
  Array.init n (fun _ -> Orq_util.Prg.int_below prg bound)

(* ------------------------------------------------------------------ *)

let table1 () =
  section "Table 1: shuffle primitive costs (measured vs paper formulas)";
  hdr "%-22s %-8s %12s %8s %16s" "primitive" "proto" "bits" "rounds"
    "paper formula";
  let n = 256 in
  List.iter
    (fun kind ->
      let label = Ctx.kind_label kind in
      let fresh () = Ctx.create ~seed:11 kind in
      let run name formula f =
        let ctx = fresh () in
        let _, m = measure ctx (fun () -> f ctx) in
        row "%-22s %-8s %12d %8d %16s" name label m.online.Orq_net.Comm.t_bits
          m.online.Orq_net.Comm.t_rounds formula
      in
      let l = 64 in
      run "applySharded"
        (match kind with
        | Ctx.Sh_dm -> Printf.sprintf "2ln=%d, 2r" (2 * l * n)
        | Ctx.Sh_hm -> Printf.sprintf "6ln=%d, 3r" (6 * l * n)
        | Ctx.Mal_hm -> Printf.sprintf "24ln=%d, 4r" (24 * l * n))
        (fun ctx ->
          let x = Mpc.share_b ctx (rand_vec ctx.Ctx.prg n 1000) in
          let p = Shardedperm.gen ctx n in
          ignore (Shardedperm.apply ctx x p));
      run "shuffle" "= applySharded" (fun ctx ->
          ignore (Permops.shuffle ctx (Mpc.share_b ctx (rand_vec ctx.Ctx.prg n 1000))));
      run "applyElementwise"
        (match kind with
        | Ctx.Sh_dm -> "2ln+3l_s n, 5r"
        | Ctx.Sh_hm -> "6ln+7l_s n, 7r"
        | Ctx.Mal_hm -> "24ln+25l_s n, 9r")
        (fun ctx ->
          let x = Mpc.share_b ctx (rand_vec ctx.Ctx.prg n 1000) in
          let rho =
            Mpc.share_a ctx (Orq_shuffle.Localperm.random ctx.Ctx.prg n)
          in
          ignore (Permops.apply_elementwise ctx x rho));
      run "compose"
        (match kind with
        | Ctx.Sh_dm -> "5l_s n, 5r"
        | Ctx.Sh_hm -> "13l_s n, 7r"
        | Ctx.Mal_hm -> "49l_s n, 9r")
        (fun ctx ->
          let s = Mpc.share_b ctx (Orq_shuffle.Localperm.random ctx.Ctx.prg n) in
          let r = Mpc.share_b ctx (Orq_shuffle.Localperm.random ctx.Ctx.prg n) in
          ignore (Permops.compose ctx s r));
      run "invertElementwise" "= compose" (fun ctx ->
          let p = Mpc.share_b ctx (Orq_shuffle.Localperm.random ctx.Ctx.prg n) in
          ignore (Permops.invert ctx p));
      run "convertElementwise" "= compose" (fun ctx ->
          let p = Mpc.share_b ctx (Orq_shuffle.Localperm.random ctx.Ctx.prg n) in
          ignore (Permops.convert ctx p Share.Arith)))
    Ctx.all_kinds

(* ------------------------------------------------------------------ *)

let radix_run kind ~bits ~n ~variant () =
  let ctx = Ctx.create ~seed:17 kind in
  let x = Mpc.share_b ctx (rand_vec ctx.Ctx.prg n (Orq_util.Ring.mask (min bits 30))) in
  let _, m =
    measure ctx (fun () ->
        match variant with
        | `Hybrid -> ignore (Orq_sort.Radixsort.sort ctx ~bits x [])
        | `Compose -> ignore (Orq_sort.Radix_compose.sort ctx ~bits x [])
        | `Naive -> ignore (Orq_baselines.Radix_naive.sort ctx ~bits x []))
  in
  m

let table2 () =
  section "Table 2: radixsort cost analysis (hybrid vs Asharov et al.)";
  hdr "%-6s %-10s %12s %8s %12s %8s %10s" "l" "size" "hybrid-bits"
    "rounds" "compose-bits" "rounds" "round-save";
  let n = 256 in
  List.iter
    (fun bits ->
      let h = radix_run Ctx.Sh_hm ~bits ~n ~variant:`Hybrid () in
      let c = radix_run Ctx.Sh_hm ~bits ~n ~variant:`Compose () in
      row "%-6d %-10d %12d %8d %12d %8d %9.0f%%" bits n
        h.online.Orq_net.Comm.t_bits h.online.Orq_net.Comm.t_rounds
        c.online.Orq_net.Comm.t_bits c.online.Orq_net.Comm.t_rounds
        (100.
        *. (1.
           -. float_of_int h.online.Orq_net.Comm.t_rounds
              /. float_of_int c.online.Orq_net.Comm.t_rounds)))
    [ 1; 16; 32; 60 ];
  row "(paper, l=32: comm -1.4%%, rounds -36%%; l=64: comm +22%%, rounds -37%%)"

let fig11 ~sizes () =
  section "Figure 11: hybrid vs compose radixsort (SH-HM), LAN and WAN";
  hdr "%-6s %-8s %10s %10s %10s %10s %8s" "l" "n" "hyb-LAN" "cmp-LAN"
    "hyb-WAN" "cmp-WAN" "win";
  List.iter
    (fun bits ->
      List.iter
        (fun n ->
          let h = radix_run Ctx.Sh_hm ~bits ~n ~variant:`Hybrid () in
          let c = radix_run Ctx.Sh_hm ~bits ~n ~variant:`Compose () in
          let hl = estimate Netsim.lan h and cl = estimate Netsim.lan c in
          let hw = estimate Netsim.wan h and cw = estimate Netsim.wan c in
          row "%-6d %-8d %10s %10s %10s %10s %7.2fx" bits n (pretty_time hl)
            (pretty_time cl) (pretty_time hw) (pretty_time cw) (cw /. hw))
        sizes)
    [ 32; 60 ];
  row "(paper: hybrid wins in all scenarios by up to 1.44x)"

let fig6_table10 ~sizes () =
  section
    "Figure 6 + Table 10: ORQ radixsort vs SecretFlow SBK (non-parallel)";
  hdr "%-8s %-10s %12s %12s %10s %14s %14s" "n" "variant" "orq-LAN"
    "sbk-LAN" "speedup" "orq-MB" "sbk-MB";
  List.iter
    (fun n ->
      List.iter
        (fun (label, bits) ->
          let o = radix_run Ctx.Sh_dm ~bits ~n ~variant:`Hybrid () in
          let s = radix_run Ctx.Sh_dm ~bits ~n ~variant:`Naive () in
          row "%-8d %-10s %12s %12s %9.1fx %14.2f %14.2f" n label
            (pretty_time (estimate Netsim.lan o))
            (pretty_time (estimate Netsim.lan s))
            (estimate Netsim.lan s /. estimate Netsim.lan o)
            (mib o.online) (mib s.online))
        [ ("32-bit", 32); ("64-bit", 60) ])
    sizes;
  row "(paper: ORQ up to 4.4x/5.5x faster; 1.34x-1.79x lower bandwidth)"

let fig7_table11 ~sizes () =
  section "Figure 7 + Table 11: ORQ vs MP-SPDZ-style radixsort, per protocol";
  hdr "%-8s %-8s %12s %12s %10s %12s %12s" "proto" "n" "orq-LAN" "spdz-LAN"
    "speedup" "orq-MB" "spdz-MB";
  List.iter
    (fun kind ->
      List.iter
        (fun n ->
          let o = radix_run kind ~bits:32 ~n ~variant:`Hybrid () in
          (* the row-wise baseline becomes intractable quickly — like
             MP-SPDZ, which crashes/OOMs beyond 2^20-2^25 in the paper *)
          if n <= 1024 then begin
            let s = radix_run kind ~bits:32 ~n ~variant:`Naive () in
            row "%-8s %-8d %12s %12s %9.1fx %12.2f %12.2f"
              (Ctx.kind_label kind) n
              (pretty_time (estimate Netsim.lan o))
              (pretty_time (estimate Netsim.lan s))
              (estimate Netsim.lan s /. estimate Netsim.lan o)
              (mib o.online) (mib s.online)
          end
          else
            row "%-8s %-8d %12s %12s %10s %12.2f %12s"
              (Ctx.kind_label kind) n
              (pretty_time (estimate Netsim.lan o))
              "(baseline capped)" "-" (mib o.online) "-")
        sizes)
    Ctx.all_kinds;
  row "(paper: 8.5x-189x faster; MP-SPDZ crashes/OOMs at larger sizes)"

let fig10 ~sizes () =
  section "Figure 10: oblivious sorting scalability (LAN estimates)";
  hdr "%-8s %-12s %-10s %12s %12s %10s" "proto" "algorithm" "n" "compute"
    "LAN-est" "MB";
  List.iter
    (fun kind ->
      List.iter
        (fun n ->
          let run_q () =
            let ctx = Ctx.create ~seed:19 kind in
            let x =
              Mpc.share_b ctx (rand_vec ctx.Ctx.prg n (Orq_util.Ring.mask 30))
            in
            measure ctx (fun () ->
                ignore
                  (Orq_sort.Sortwrap.sort ctx ~algo:Orq_sort.Sortwrap.Quicksort
                     ~dir:Orq_sort.Sortwrap.Asc ~w:32 x []))
          in
          let run_r () =
            let ctx = Ctx.create ~seed:19 kind in
            let x =
              Mpc.share_b ctx (rand_vec ctx.Ctx.prg n (Orq_util.Ring.mask 30))
            in
            measure ctx (fun () ->
                ignore
                  (Orq_sort.Sortwrap.sort ctx ~algo:Orq_sort.Sortwrap.Radixsort
                     ~dir:Orq_sort.Sortwrap.Asc ~w:32 x []))
          in
          let _, mq = run_q () in
          let _, mr = run_r () in
          row "%-8s %-12s %-10d %12s %12s %10.2f" (Ctx.kind_label kind)
            "quicksort" n (pretty_time mq.wall_s)
            (pretty_time (estimate Netsim.lan mq))
            (mib mq.online);
          row "%-8s %-12s %-10d %12s %12s %10.2f" (Ctx.kind_label kind)
            "radixsort" n (pretty_time mr.wall_s)
            (pretty_time (estimate Netsim.lan mr))
            (mib mr.online))
        sizes)
    Ctx.all_kinds;
  row
    "(paper: Mal-HM radixsort 2^27 in ~35min; SH-HM quicksort 2^29 in ~70min; \
     quicksort scales furthest)"
