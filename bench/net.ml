(* Real-deployment benchmark (DESIGN.md, "Real multi-party deployment"):
   for each protocol, fork a complete party cluster on loopback TCP —
   2 (sh-dm), 3 (sh-hm), or 4 (mal-hm) real OS processes exchanging
   actual framed messages — and drive the TPC-H SQL suite through the
   coordinator's client socket.

   Two identities are asserted per query, and gate the exit code:

     - results: the cluster's response (rows, columns, tallies, modeled
       times) must be byte-identical to the in-process simulation running
       [Service.execute_sql] with the same seed — the deployment must not
       perturb the oblivious execution;
     - wire: the measured on-the-wire traffic (summed over parties) must
       equal the metered Comm tally exactly — bits and messages as
       counted, physical exchanges = metered rounds + fusion refunds.

   Wall-clock per query is recorded against the Netsim LAN estimate
   (loopback has negligible latency, so wall sits far below the modeled
   LAN time — the interesting number is the measured bytes, which are
   identical by construction, not simulated).

   Writes BENCH_net.json. ORQ_NET_QUICK=1 shrinks the suite to three
   queries per protocol (the CI smoke job). *)

open Orq_proto
module Wire = Orq_net.Wire
module Comm = Orq_net.Comm
module Netsim = Orq_net.Netsim
module Transport = Orq_net.Transport
module Service = Orq_service.Service
module Client = Orq_service.Client
module Cluster = Orq_party.Cluster
module Tpch_gen = Orq_workloads.Tpch_gen

let quick () =
  match Sys.getenv_opt "ORQ_NET_QUICK" with
  | Some ("0" | "") | None -> false
  | Some _ -> true

let sf = 0.001
let seed = 42
let max_rows = 10_000

(* The SQL suite over the TPC-H catalog: aggregates, filters, and a
   top-k over every table size the micro scale offers (lineitem ~6k rows
   down to region's 5). The quick subset keeps one large-table and two
   small-table queries. *)
let full_suite =
  [
    "SELECT l_returnflag, COUNT(*) AS n, SUM(l_quantity) AS qty FROM \
     lineitem GROUP BY l_returnflag";
    "SELECT l_shipmode, SUM(l_extendedprice) AS revenue FROM lineitem \
     WHERE l_discount > 2 GROUP BY l_shipmode";
    "SELECT o_orderpriority, COUNT(*) AS n FROM orders GROUP BY \
     o_orderpriority";
    "SELECT o_orderkey, o_totalprice FROM orders ORDER BY o_totalprice \
     DESC LIMIT 10";
    "SELECT c_mktsegment, COUNT(*) AS n, SUM(c_acctbal) AS bal FROM \
     customer GROUP BY c_mktsegment";
    "SELECT p_brand, COUNT(*) AS n FROM part GROUP BY p_brand";
    "SELECT s_nationkey, COUNT(*) AS n FROM supplier GROUP BY s_nationkey";
    "SELECT n_regionkey, COUNT(*) AS n FROM nation GROUP BY n_regionkey";
  ]

let quick_suite =
  [
    "SELECT o_orderpriority, COUNT(*) AS n FROM orders GROUP BY \
     o_orderpriority";
    "SELECT s_nationkey, COUNT(*) AS n FROM supplier GROUP BY s_nationkey";
    "SELECT n_regionkey, COUNT(*) AS n FROM nation GROUP BY n_regionkey";
  ]

(* The simulation reference: the exact execution path the cluster runs,
   same seed derivation, no transport channel. *)
let simulate proto sql : Wire.response =
  let ctx = Ctx.create ~seed proto in
  let db = Tpch_gen.share ctx (Tpch_gen.generate ~seed sf) in
  let proto_label = Ctx.kind_label proto in
  let qseed = Service.query_seed_for ~seed ~proto_label ~sql in
  Service.execute_sql ~ctx ~db ~qseed ~max_rows sql

type row = {
  x_proto : string;
  x_sql : string;
  x_rounds : int;
  x_bits : int;
  x_msgs : int;
  x_exchanges : int;
  x_refunds : int;
  x_payload_bytes : int;
  x_frames : int;
  x_wall_s : float;
  x_lan_s : float;
  x_result_ok : bool;
  x_wire_ok : bool;
}

let bench_proto proto suite : row list =
  let label = String.lowercase_ascii (Ctx.kind_label proto) in
  Printf.printf "== %s: launching %d parties on loopback TCP\n%!" label
    (Ctx.parties_of proto);
  (* fork the cluster first: the children build their backends while
     this process computes the simulation references *)
  let l = Cluster.launch_local ~seed ~sf ~max_rows proto in
  Fun.protect ~finally:(fun () -> Cluster.shutdown_local l) @@ fun () ->
  let refs = List.map (fun sql -> (sql, simulate proto sql)) suite in
  let c =
    Client.connect ~timeout_ms:300_000 ~retry_ms:30_000
      (Transport.format_addr l.Cluster.l_client)
  in
  Fun.protect ~finally:(fun () -> Client.close c) @@ fun () ->
  (match Client.set_protocol c label with
  | Ok _ -> ()
  | Error msg -> failwith ("cluster refused Hello: " ^ msg));
  List.map
    (fun (sql, reference) ->
      let t0 = Unix.gettimeofday () in
      let resp = Client.query c sql in
      let wall = Unix.gettimeofday () -. t0 in
      let r =
        match resp with
        | Ok r -> r
        | Error (_, msg) -> failwith ("cluster query failed: " ^ msg)
      in
      let result_ok =
        match reference with
        | Wire.Result re -> r = re
        | _ -> false
      in
      if not result_ok then
        Printf.printf "   MISMATCH results: %s\n%!" sql;
      let s =
        match Client.net_stats c with
        | Ok s -> s
        | Error msg -> failwith ("net_stats: " ^ msg)
      in
      let tally = r.Wire.r_tally in
      let wire_ok =
        s.Wire.n_bits = tally.Comm.t_bits
        && s.Wire.n_messages = tally.Comm.t_messages
        && s.Wire.n_exchanges - s.Wire.n_refunds = tally.Comm.t_rounds
        && s.Wire.n_parties = Ctx.parties_of proto
      in
      if not wire_ok then
        Printf.printf
          "   MISMATCH wire: %s\n\
          \     measured bits=%d msgs=%d exch=%d-%d | metered bits=%d \
           msgs=%d rounds=%d\n\
           %!"
          sql s.Wire.n_bits s.Wire.n_messages s.Wire.n_exchanges
          s.Wire.n_refunds tally.Comm.t_bits tally.Comm.t_messages
          tally.Comm.t_rounds;
      Printf.printf
        "   %-9s %-36s %6d rounds %10.1f KiB wire  %.3fs wall (LAN est \
         %.3fs)%s\n\
         %!"
        label
        (String.sub sql 7 (min 36 (String.length sql - 7)))
        tally.Comm.t_rounds
        (float_of_int s.Wire.n_payload_bytes /. 1024.)
        wall r.Wire.r_lan_s
        (if result_ok && wire_ok then "" else "  << FAIL");
      {
        x_proto = label;
        x_sql = sql;
        x_rounds = tally.Comm.t_rounds;
        x_bits = tally.Comm.t_bits;
        x_msgs = tally.Comm.t_messages;
        x_exchanges = s.Wire.n_exchanges;
        x_refunds = s.Wire.n_refunds;
        x_payload_bytes = s.Wire.n_payload_bytes;
        x_frames = s.Wire.n_frames;
        x_wall_s = wall;
        x_lan_s = r.Wire.r_lan_s;
        x_result_ok = result_ok;
        x_wire_ok = wire_ok;
      })
    refs

let () =
  let q = quick () in
  let suite = if q then quick_suite else full_suite in
  Printf.printf
    "orq real-deployment bench: %d queries x {sh-dm, sh-hm, mal-hm} over \
     loopback TCP (sf=%g%s)\n\
     %!"
    (List.length suite) sf
    (if q then ", quick" else "");
  let rows =
    List.concat_map
      (fun proto -> bench_proto proto suite)
      [ Ctx.Sh_dm; Ctx.Sh_hm; Ctx.Mal_hm ]
  in
  let bad =
    List.filter (fun r -> not (r.x_result_ok && r.x_wire_ok)) rows
  in
  let oc = open_out "BENCH_net.json" in
  let pf fmt = Printf.fprintf oc fmt in
  pf "{\n  \"schema\": \"orq-net-v1\",\n";
  pf "  \"quick\": %b,\n  \"sf\": %g,\n  \"seed\": %d,\n" q sf seed;
  pf
    "  \"note\": \"real multi-party deployment on loopback TCP: one OS \
     process per party, full mesh, one framed message per metered round. \
     result_identical = cluster response byte-identical to the in-process \
     simulation; wire_identical = measured on-the-wire bits/messages equal \
     the Comm tally and physical exchanges = metered rounds + fusion \
     refunds. wall_s is loopback wall-clock; lan_est_s is the Netsim model \
     at LAN latency.\",\n";
  pf "  \"results\": [\n";
  List.iteri
    (fun i r ->
      pf
        "    {\"proto\": %S, \"sql\": %S, \"rounds\": %d, \"bits\": %d, \
         \"messages\": %d, \"exchanges\": %d, \"refunds\": %d, \
         \"payload_bytes\": %d, \"frames\": %d, \"wall_s\": %.4f, \
         \"lan_est_s\": %.4f, \"result_identical\": %b, \
         \"wire_identical\": %b}%s\n"
        r.x_proto r.x_sql r.x_rounds r.x_bits r.x_msgs r.x_exchanges
        r.x_refunds r.x_payload_bytes r.x_frames r.x_wall_s r.x_lan_s
        r.x_result_ok r.x_wire_ok
        (if i = List.length rows - 1 then "" else ","))
    rows;
  pf "  ],\n  \"failures\": %d\n}\n" (List.length bad);
  close_out oc;
  Printf.printf "wrote BENCH_net.json (%d runs)\n%!" (List.length rows);
  if bad <> [] then begin
    Printf.eprintf
      "FAIL: %d queries diverged between the cluster and the simulation\n"
      (List.length bad);
    exit 1
  end;
  Printf.printf
    "all %d cluster responses and wire measurements identical to the \
     simulation\n\
     %!"
    (List.length rows)
