(** Out-of-core scaling benchmark: runs TPC-H pipelines with chunked
    share vectors under an explicit memory budget and gates the three
    claims the chunking layer makes (writes BENCH_scale.json):

    - overhead: with streaming on and no budget pressure, chunked wall
      clock stays within 1.3x of the monolithic engine (SF 0.01);
    - out-of-core: a large run (SF 0.1; quick mode 0.02, or ORQ_SCALE_SF)
      completes with the budget clamped to 1/4 of its own unlimited peak,
      actually spilling, with resident chunk bytes never above budget;
    - identity: every chunked run reproduces the monolithic engine's
      communication tally bit-for-bit and validates against the plaintext
      reference.

    The SF ladder at the end feeds EXPERIMENTS.md: peak resident bytes
    vs table bytes as the data outgrows a fixed-fraction budget.

    Quick mode (ORQ_SCALE_QUICK=1) shrinks the big run to SF 0.02. *)

open Orq_proto
open Orq_workloads
open Bench_util
module Chunkvec = Orq_util.Chunkvec
module Comm = Orq_net.Comm
module Table = Orq_core.Table

let getenv_flag v =
  match Sys.getenv_opt v with
  | Some ("1" | "true" | "yes" | "on") -> true
  | _ -> false

(* run [f] with the streaming knobs set, restoring the global state *)
let with_streaming ~rows ~budget f =
  let rows0 = Chunkvec.chunk_rows () in
  let budget0 = Chunkvec.budget () in
  let on0 = Chunkvec.streaming_enabled () in
  Chunkvec.set_chunk_rows rows;
  Chunkvec.set_budget budget;
  Fun.protect
    ~finally:(fun () ->
      Chunkvec.set_chunk_rows rows0;
      Chunkvec.set_budget budget0;
      Chunkvec.set_streaming on0)
    f

let with_monolithic f =
  let on0 = Chunkvec.streaming_enabled () in
  Chunkvec.set_streaming false;
  Fun.protect ~finally:(fun () -> Chunkvec.set_streaming on0) f

(* Physical share bytes of a table: every column plus the validity bit,
   one ring word per party vector per row. *)
let table_bytes (ctx : Ctx.t) (t : Table.t) =
  let n = Share.length t.Table.valid in
  let nvec = ctx.Ctx.parties in
  n * (List.length t.Table.cols + 1) * nvec * 8

let tally_match a b =
  a.Comm.t_rounds = b.Comm.t_rounds
  && a.Comm.t_bits = b.Comm.t_bits
  && a.Comm.t_messages = b.Comm.t_messages

(* One validated query run under the ambient streaming configuration.
   Fresh context and fresh catalog each time: sharing rides inside the
   measurement so peak bytes cover the catalog too. *)
let run_query kind plain qname =
  Gc.full_major ();
  let q = Tpch.find qname in
  let ctx = Ctx.create ~seed:5 kind in
  let (ok, _, _), m =
    measure ctx (fun () ->
        let mdb = Tpch_gen.share ctx plain in
        Tpch.validate q plain mdb)
  in
  (ok, m)

(* Share the catalog (streaming on) just to size the named table. *)
let sized_table kind plain name =
  let ctx = Ctx.create ~seed:5 kind in
  let mdb = Tpch_gen.share ctx plain in
  let t, _ = Tpch_gen.catalog mdb name in
  table_bytes ctx t

type speed_row = {
  sp_name : string;
  sp_mono_s : float;
  sp_chunked_s : float;
  sp_tally_match : bool;
  sp_ok : bool;
}

type big_result = {
  bg_sf : float;
  bg_query : string;
  bg_table_bytes : int;
  bg_unlimited_peak : int;
  bg_budget : int;
  bg_budget_peak : int;
  bg_spills : int;
  bg_wall_s : float;
  bg_rss_peak_kb : int;
  bg_tally_match : bool;
  bg_ok : bool;
}

type ladder_row = {
  ld_sf : float;
  ld_table_bytes : int;
  ld_budget : int;
  ld_peak : int;
  ld_spills : int;
  ld_wall_s : float;
  ld_ok : bool;
}

let run () =
  let quick = getenv_flag "ORQ_SCALE_QUICK" in
  let kind = Ctx.Sh_hm in
  let sf_speed = 0.01 in
  let sf_big =
    match Sys.getenv_opt "ORQ_SCALE_SF" with
    | Some s -> float_of_string s
    | None -> if quick then 0.02 else 0.1
  in
  let ladder_sfs =
    if quick then [ 0.005; 0.01; 0.02 ] else [ 0.02; 0.05; 0.1 ]
  in
  section
    (Printf.sprintf
       "Out-of-core scaling (%s): overhead @ SF %g, budgeted run @ SF %g%s"
       (Ctx.kind_label kind) sf_speed sf_big
       (if quick then ", quick" else ""));

  (* ---- phase 1: streaming overhead at a memory-comfortable size ---- *)
  let plain_speed = Tpch_gen.generate ~seed:99 sf_speed in
  let speed_queries = [ "Q1"; "Q6" ] in
  hdr "%-6s %10s %10s %7s %6s %3s" "query" "mono" "chunked" "ratio" "tally"
    "ok";
  let speed =
    List.map
      (fun qname ->
        let ok_m, mm =
          with_monolithic (fun () -> run_query kind plain_speed qname)
        in
        let ok_c, mc =
          with_streaming ~rows:8192 ~budget:0 (fun () ->
              run_query kind plain_speed qname)
        in
        let r =
          {
            sp_name = qname;
            sp_mono_s = mm.wall_s;
            sp_chunked_s = mc.wall_s;
            sp_tally_match = tally_match mm.online mc.online;
            sp_ok = ok_m && ok_c;
          }
        in
        hdr "%-6s %10s %10s %6.2fx %6s %3s" qname (pretty_time mm.wall_s)
          (pretty_time mc.wall_s)
          (mc.wall_s /. mm.wall_s)
          (if r.sp_tally_match then "yes" else "NO")
          (if r.sp_ok then "ok" else "NO");
        r)
      speed_queries
  in
  let speed_ratio =
    List.fold_left (fun a r -> a +. r.sp_chunked_s) 0. speed
    /. List.fold_left (fun a r -> a +. r.sp_mono_s) 0. speed
  in
  hdr "aggregate chunked/mono wall ratio: %.2fx (gate <= 1.30x)" speed_ratio;

  (* ---- phase 2: the big run under a real budget ---- *)
  let plain_big = Tpch_gen.generate ~seed:99 sf_big in
  let bq = "Q1" in
  let tbytes =
    with_streaming ~rows:8192 ~budget:0 (fun () ->
        sized_table kind plain_big "lineitem")
  in
  hdr "\nbig run: %s @ SF %g (lineitem %.1f MiB of shares)" bq sf_big
    (float_of_int tbytes /. 1024. /. 1024.);
  let ok_u, mu =
    with_streaming ~rows:8192 ~budget:0 (fun () ->
        run_query kind plain_big bq)
  in
  let w = mu.peak_chunk_bytes in
  let budget = max 1 (w / 4) in
  hdr "unlimited streaming peak: %.1f MiB -> budget clamped to %.1f MiB"
    (float_of_int w /. 1024. /. 1024.)
    (float_of_int budget /. 1024. /. 1024.);
  let ok_b, mb =
    with_streaming ~rows:8192 ~budget (fun () ->
        run_query kind plain_big bq)
  in
  let big =
    {
      bg_sf = sf_big;
      bg_query = bq;
      bg_table_bytes = tbytes;
      bg_unlimited_peak = w;
      bg_budget = budget;
      bg_budget_peak = mb.peak_chunk_bytes;
      bg_spills = mb.spills;
      bg_wall_s = mb.wall_s;
      bg_rss_peak_kb = mb.rss_peak_kb;
      bg_tally_match = tally_match mu.online mb.online;
      bg_ok = ok_u && ok_b;
    }
  in
  hdr
    "budgeted run: %s | peak %.1f MiB (budget %.1f) | %d spills | tally %s \
     | %s"
    (pretty_time big.bg_wall_s)
    (float_of_int big.bg_budget_peak /. 1024. /. 1024.)
    (float_of_int big.bg_budget /. 1024. /. 1024.)
    big.bg_spills
    (if big.bg_tally_match then "identical" else "MISMATCH")
    (if big.bg_ok then "validated" else "VALIDATION FAILED");

  (* ---- phase 3: SF ladder at a fixed budget fraction (Q6) ---- *)
  hdr "\nladder (Q6, budget = table/4):";
  hdr "%-8s %12s %12s %7s %8s %10s" "sf" "table MiB" "peak MiB" "spills"
    "wall" "peak/table";
  let ladder =
    List.map
      (fun sf ->
        let plain = Tpch_gen.generate ~seed:99 sf in
        let tb =
          with_streaming ~rows:8192 ~budget:0 (fun () ->
              sized_table kind plain "lineitem")
        in
        let budget = max 1 (tb / 4) in
        let ok, m =
          with_streaming ~rows:8192 ~budget (fun () ->
              run_query kind plain "Q6")
        in
        let r =
          {
            ld_sf = sf;
            ld_table_bytes = tb;
            ld_budget = budget;
            ld_peak = m.peak_chunk_bytes;
            ld_spills = m.spills;
            ld_wall_s = m.wall_s;
            ld_ok = ok;
          }
        in
        hdr "%-8g %12.1f %12.1f %7d %8s %9.2f%%" sf
          (float_of_int tb /. 1024. /. 1024.)
          (float_of_int r.ld_peak /. 1024. /. 1024.)
          r.ld_spills (pretty_time r.ld_wall_s)
          (100. *. float_of_int r.ld_peak /. float_of_int tb);
        r)
      ladder_sfs
  in

  (* ---- gates ---- *)
  let speed_pass =
    speed_ratio <= 1.30
    && List.for_all (fun r -> r.sp_ok && r.sp_tally_match) speed
  in
  (* the store guarantees budget plus the pinned working set (chunks an
     active operator holds pinned are not evictable): allow 10% slack *)
  let within budget peak = peak <= budget + (budget / 10) in
  let big_pass =
    big.bg_ok && big.bg_tally_match && big.bg_spills > 0
    && within big.bg_budget big.bg_budget_peak
    && big.bg_budget < big.bg_table_bytes
  in
  let ladder_pass =
    List.for_all (fun r -> r.ld_ok && within r.ld_budget r.ld_peak) ladder
  in
  if not speed_pass then
    hdr "SPEED GATE FAILED: ratio %.2fx or a validation/tally failure"
      speed_ratio;
  if not big_pass then hdr "BIG-RUN GATE FAILED (see above)";
  if not ladder_pass then hdr "LADDER GATE FAILED (peak above budget + slack)";

  let oc = open_out "BENCH_scale.json" in
  Printf.fprintf oc
    "{\n  \"protocol\": \"%s\",\n  \"quick\": %b,\n  \"speed\": {\n\
    \    \"sf\": %g,\n    \"chunk_rows\": 8192,\n    \"queries\": [\n%s\n\
    \    ],\n    \"aggregate_ratio\": %.3f,\n    \"gate_ratio\": 1.30,\n\
    \    \"pass\": %b\n  },\n  \"big\": {\n    \"sf\": %g,\n\
    \    \"query\": \"%s\",\n    \"table_bytes\": %d,\n\
    \    \"unlimited_peak_bytes\": %d,\n    \"budget_bytes\": %d,\n\
    \    \"budget_peak_bytes\": %d,\n    \"spills\": %d,\n\
    \    \"wall_s\": %.3f,\n    \"rss_peak_kb\": %d,\n\
    \    \"tally_match\": %b,\n    \"validated\": %b,\n    \"pass\": %b\n\
    \  },\n  \"ladder\": [\n%s\n  ],\n  \"pass\": %b\n}\n"
    (Ctx.kind_label kind) quick sf_speed
    (String.concat ",\n"
       (List.map
          (fun r ->
            Printf.sprintf
              "      {\"name\":\"%s\",\"mono_s\":%.3f,\"chunked_s\":%.3f,\
               \"tally_match\":%b,\"validated\":%b}"
              r.sp_name r.sp_mono_s r.sp_chunked_s r.sp_tally_match r.sp_ok)
          speed))
    speed_ratio speed_pass sf_big big.bg_query big.bg_table_bytes
    big.bg_unlimited_peak big.bg_budget big.bg_budget_peak big.bg_spills
    big.bg_wall_s big.bg_rss_peak_kb big.bg_tally_match big.bg_ok big_pass
    (String.concat ",\n"
       (List.map
          (fun r ->
            Printf.sprintf
              "    {\"sf\":%g,\"table_bytes\":%d,\"budget_bytes\":%d,\
               \"peak_bytes\":%d,\"spills\":%d,\"wall_s\":%.3f,\
               \"validated\":%b}"
              r.ld_sf r.ld_table_bytes r.ld_budget r.ld_peak r.ld_spills
              r.ld_wall_s r.ld_ok)
          ladder))
    (speed_pass && big_pass && ladder_pass);
  close_out oc;
  hdr "wrote BENCH_scale.json";
  if not (speed_pass && big_pass && ladder_pass) then exit 1
