(** Ablations of the design choices called out in DESIGN.md:

    - the trimming heuristic (§3.3 / Appendix C.3): Always / Never / Auto
      on asymmetric and symmetric joins;
    - sorting-algorithm choice (quicksort vs radixsort) across key widths;
    - AggNet power-of-two padding: the cost cliff right above 2^k (the
      Figure 8 / Q12 effect);
    - TableSort permutation composition vs per-key full re-sorting (the
      strawman Protocol 2 avoids). *)

open Orq_proto
open Orq_core
open Bench_util

let mk_table ctx name n key_bound =
  let prg = ctx.Ctx.prg in
  Table.create ctx name
    [
      ("k", 24, Array.init n (fun _ -> Orq_util.Prg.int_below prg key_bound));
      ("v", 24, Array.init n (fun _ -> Orq_util.Prg.int_below prg 1000));
    ]

let mk_left ctx n =
  Table.create ctx "L"
    [
      ("k", 24, Array.init n (fun i -> i + 1));
      ("lv", 24, Array.init n (fun i -> i * 7));
    ]

let trim_ablation ~n () =
  section "Ablation: join trimming heuristic (SH-HM)";
  hdr "%-26s %-8s %12s %12s %10s" "scenario" "trim" "LAN-est" "MB" "out-rows";
  List.iter
    (fun (label, ln, rn) ->
      List.iter
        (fun (tlabel, trim) ->
          let ctx = Ctx.create ~seed:23 Ctx.Sh_hm in
          let l = mk_left ctx ln in
          let r =
            Table.rename_col (mk_table ctx "R" rn (ln + 1)) ~from:"v" ~into:"rv"
          in
          let j, m =
            measure ctx (fun () ->
                Dataflow.inner_join ~trim l r ~on:[ "k" ] ~copy:[ "lv" ])
          in
          (* follow with an aggregation so the trimmed size pays off *)
          let _, m2 =
            measure ctx (fun () ->
                ignore
                  (Dataflow.aggregate j ~keys:[ "k" ]
                     ~aggs:[ { Dataflow.src = "rv"; dst = "s"; fn = Dataflow.Sum } ]))
          in
          let total =
            {
              m with
              wall_s = m.wall_s +. m2.wall_s;
              online = Orq_net.Comm.add_tally m.online m2.online;
            }
          in
          row "%-26s %-8s %12s %12.2f %10d" label tlabel
            (pretty_time (estimate Netsim.lan total))
            (mib total.online) (Table.nrows j))
        [ ("auto", `Auto); ("always", `Always); ("never", `Never) ])
    [
      (Printf.sprintf "symmetric %dx%d" n (2 * n), n, 2 * n);
      (Printf.sprintf "asymmetric %dx%d" (n / 8) (4 * n), n / 8, 4 * n);
    ];
  row "(heuristic: trim when 3*alpha*N < lg L * lg omega — C.3)"

let sort_algo_ablation ~n () =
  section "Ablation: quicksort vs radixsort by key width (SH-HM)";
  hdr "%-8s %-12s %12s %12s %12s %8s" "width" "algorithm" "compute"
    "LAN-est" "WAN-est" "MB";
  List.iter
    (fun w ->
      List.iter
        (fun (label, algo) ->
          let ctx = Ctx.create ~seed:29 Ctx.Sh_hm in
          let x =
            Mpc.share_b ctx
              (Array.init n (fun _ ->
                   Orq_util.Prg.int_below ctx.Ctx.prg (Orq_util.Ring.mask (min w 30))))
          in
          let _, m =
            measure ctx (fun () ->
                ignore
                  (Orq_sort.Sortwrap.sort ctx ~algo ~dir:Orq_sort.Sortwrap.Asc
                     ~w x []))
          in
          row "%-8d %-12s %12s %12s %12s %8.2f" w label (pretty_time m.wall_s)
            (pretty_time (estimate Netsim.lan m))
            (pretty_time (estimate Netsim.wan m))
            (mib m.online))
        [
          ("quicksort", Orq_sort.Sortwrap.Quicksort);
          ("radixsort", Orq_sort.Sortwrap.Radixsort);
        ])
    [ 8; 16; 32; 48 ];
  row "(the engine defaults to radixsort at <=32 bits, quicksort above)"

let aggnet_padding_ablation () =
  section "Ablation: AggNet power-of-two padding cliff (SH-HM)";
  hdr "%-10s %12s %12s" "rows" "LAN-est" "MB";
  List.iter
    (fun n ->
      let ctx = Ctx.create ~seed:31 Ctx.Sh_hm in
      let t = mk_table ctx "T" n 50 in
      let _, m =
        measure ctx (fun () ->
            ignore
              (Dataflow.aggregate t ~keys:[ "k" ]
                 ~aggs:[ { Dataflow.src = "v"; dst = "s"; fn = Dataflow.Sum } ]))
      in
      row "%-10d %12s %12.2f" n
        (pretty_time (estimate Netsim.lan m))
        (mib m.online))
    [ 1000; 1024; 1025; 2000; 2048; 2049 ];
  row
    "(crossing 2^k pads the network to the next power of two — the \
     paper's Q12 scaling outlier)"

let tablesort_ablation ~n () =
  section
    "Ablation: TableSort permutation composition vs per-key full re-sort";
  hdr "%-26s %12s %12s %8s" "strategy" "LAN-est" "MB" "rounds";
  let mk ctx =
    Table.create ctx "T"
      [
        ("a", 16, Array.init n (fun _ -> Orq_util.Prg.int_below ctx.Ctx.prg 64));
        ("b", 16, Array.init n (fun _ -> Orq_util.Prg.int_below ctx.Ctx.prg 64));
        ("c", 24, Array.init n (fun i -> i));
        ("d", 24, Array.init n (fun i -> i * 3));
        ("e", 24, Array.init n (fun i -> i * 5));
      ]
  in
  (* TableSort: extract + compose permutations, permute the table once *)
  let ctx = Ctx.create ~seed:37 Ctx.Sh_hm in
  let t = mk ctx in
  let _, m =
    measure ctx (fun () ->
        ignore (Tablesort.sort t [ ("a", Tablesort.Asc); ("b", Tablesort.Asc) ]))
  in
  row "%-26s %12s %12.2f %8d" "TableSort (compose)"
    (pretty_time (estimate Netsim.lan m))
    (mib m.online) m.online.Orq_net.Comm.t_rounds;
  (* strawman: sort the full table for each key, least-significant first *)
  let ctx = Ctx.create ~seed:37 Ctx.Sh_hm in
  let t = mk ctx in
  let _, m =
    measure ctx (fun () ->
        let t = Tablesort.sort t [ ("b", Tablesort.Asc) ] in
        ignore (Tablesort.sort t [ ("a", Tablesort.Asc) ]))
  in
  row "%-26s %12s %12.2f %8d" "strawman (re-sort table)"
    (pretty_time (estimate Netsim.lan m))
    (mib m.online) m.online.Orq_net.Comm.t_rounds;
  row "(the strawman moves every column through every sort — Secrecy-style)"

let planner_ablation ~n () =
  section "Ablation: automatic planner (optimized vs naive plans)";
  hdr "%-34s %12s %12s %10s" "plan" "LAN-est" "MB" "fallbacks";
  let module Pl = Orq_planner.Plan in
  let module Cp = Orq_planner.Compile in
  let mk_plan ctx =
    let prg = ctx.Ctx.prg in
    let l =
      Table.create ctx "L"
        [
          ("k", 12, Array.init n (fun _ -> Orq_util.Prg.int_below prg (n / 4)));
          ("x", 12, Array.init n (fun _ -> Orq_util.Prg.int_below prg 100));
        ]
    in
    let r =
      Table.create ctx "R"
        [
          ("k", 12, Array.init n (fun _ -> Orq_util.Prg.int_below prg (n / 4)));
          ("v", 12, Array.init n (fun _ -> Orq_util.Prg.int_below prg 100));
        ]
    in
    (* many-to-many join + SUM, filter written above the join *)
    Pl.aggregate ~keys:[ "k" ]
      ~aggs:[ { Dataflow.src = "v"; dst = "s"; fn = Dataflow.Sum } ]
      (Pl.filter
         Expr.(col "x" <. const 50)
         (Pl.join (Pl.scan l) (Pl.scan r) ~on:[ "k" ]))
  in
  List.iter
    (fun (label, optimize, sz) ->
      let ctx = Ctx.create ~seed:43 Ctx.Sh_hm in
      let plan = mk_plan ctx in
      ignore sz;
      let (_, fb), m = measure ctx (fun () -> Cp.run ~optimize plan) in
      row "%-34s %12s %12.2f %10d" label
        (pretty_time (estimate Netsim.lan m))
        (mib m.online) fb)
    [
      ("optimized (preagg + pushdown)", true, n);
      ("naive (quadratic fallback)", false, n / 4);
    ];
  row "(the same SQL-level query: the rewrite keeps it O(n log n))"

let all ~n () =
  trim_ablation ~n ();
  sort_algo_ablation ~n ();
  aggnet_padding_ablation ();
  tablesort_ablation ~n ();
  planner_ablation ~n:(n / 2) ()
