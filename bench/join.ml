(** Physical-join operator benchmark: the join-heavy TPC-H queries run
    once per physical-operator mode — forced sort, forced linear, forced
    quad, and cost-based auto ([Joincost]) — under identical seeds,
    validating every run against the plaintext reference and comparing
    measured rounds/bits/messages plus modeled LAN/WAN/geo network
    times. Writes BENCH_join.json.

    Gates (exit 1 on failure):
    - every run validates against the plaintext engine;
    - the linear join beats the sort join on measured rounds and/or bits
      for at least 3 of the target queries, on every benched protocol;
    - auto is measured-cheapest (modeled seconds under the costing
      profile) on every (query, protocol) pair — it may mix operators
      across a query's join nodes, so it must never lose to a forced
      mode.

    Quick mode (ORQ_JOIN_QUICK=1) restricts to Q3/Q9 under sh-hm. *)

open Orq_proto
open Orq_workloads
open Bench_util
module Comm = Orq_net.Comm
module Netsim = Orq_net.Netsim
module Joincost = Orq_core.Joincost

(* The join-heavy queries of the evaluation (§5): multi-way joins over
   customer/orders/lineitem/supplier where operator choice moves the
   bottom line. *)
let targets = [ "Q3"; "Q5"; "Q7"; "Q9"; "Q21" ]
let quick_targets = [ "Q3"; "Q9" ]

let modes =
  [
    ("sort", Joincost.Force Joincost.Sort);
    ("linear", Joincost.Force Joincost.Linear);
    ("quad", Joincost.Force Joincost.Quad);
    ("auto", Joincost.Auto);
  ]

type mrow = {
  m_mode : string;
  m_ok : bool;
  m_tally : Comm.tally;
  m_joins : string list;  (** operator actually run, per join node *)
}

type qrow = { q_name : string; q_proto : string; q_modes : mrow list }

let with_mode m f =
  let prev = Joincost.mode () in
  Joincost.set_mode m;
  Fun.protect ~finally:(fun () -> Joincost.set_mode prev) f

let run_one kind plain (q : Tpch.query) (label, mode) : mrow =
  with_mode mode (fun () ->
      Joincost.reset_log ();
      let ctx = Ctx.create ~seed:5 kind in
      let mdb = Tpch_gen.share ctx plain in
      let before = Comm.snapshot ctx.Ctx.comm in
      let ok, _, _ = Tpch.validate q plain mdb in
      let m_tally = Comm.since ctx.Ctx.comm before in
      let m_joins =
        List.map
          (fun (d : Joincost.decision) -> Joincost.op_label d.Joincost.jd_chosen)
          (Joincost.log ())
      in
      { m_mode = label; m_ok = ok; m_tally; m_joins })

let find_mode r label = List.find (fun m -> m.m_mode = label) r.q_modes

(* The comparison metric of the auto gate: modeled network seconds under
   the profile the cost model itself prices with. *)
let secs (m : mrow) = Netsim.network_time (Joincost.profile ()) m.m_tally

let linear_beats_sort r =
  let s = (find_mode r "sort").m_tally and l = (find_mode r "linear").m_tally in
  l.Comm.t_rounds < s.Comm.t_rounds || l.Comm.t_bits < s.Comm.t_bits

let auto_cheapest r =
  let auto = secs (find_mode r "auto") in
  let forced =
    List.filter_map
      (fun m -> if m.m_mode = "auto" then None else Some (secs m))
      r.q_modes
  in
  auto <= List.fold_left min infinity forced *. 1.0001

let profiles = [ ("lan", Netsim.lan); ("wan", Netsim.wan); ("geo", Netsim.geo) ]

let json_of_mrow (m : mrow) =
  let net =
    String.concat ","
      (List.map
         (fun (lbl, p) ->
           Printf.sprintf "\"%s\":%.6f" lbl (Netsim.network_time p m.m_tally))
         profiles)
  in
  Printf.sprintf
    "\"%s\":{\"rounds\":%d,\"bits\":%d,\"messages\":%d,\"ok\":%b,\
     \"joins\":[%s],\"net_s\":{%s}}"
    m.m_mode m.m_tally.Comm.t_rounds m.m_tally.Comm.t_bits
    m.m_tally.Comm.t_messages m.m_ok
    (String.concat "," (List.map (Printf.sprintf "\"%s\"") m.m_joins))
    net

let json_of_qrow (r : qrow) =
  Printf.sprintf
    "    {\"name\":\"%s\",\"proto\":\"%s\",\"linear_beats_sort\":%b,\
     \"auto_cheapest\":%b,%s}"
    r.q_name r.q_proto (linear_beats_sort r) (auto_cheapest r)
    (String.concat "," (List.map json_of_mrow r.q_modes))

let run ~sf () =
  let quick =
    match Sys.getenv_opt "ORQ_JOIN_QUICK" with
    | Some ("1" | "true" | "yes" | "on") -> true
    | _ -> false
  in
  let kinds = if quick then [ Ctx.Sh_hm ] else [ Ctx.Sh_dm; Ctx.Sh_hm; Ctx.Mal_hm ] in
  let names = if quick then quick_targets else targets in
  section
    (Printf.sprintf
       "Physical join selection: sort vs linear vs quad vs auto (TPC-H @ \
        SF=%g%s)"
       sf
       (if quick then ", quick" else ""));
  let plain = Tpch_gen.generate ~seed:99 sf in
  let queries =
    List.filter (fun (q : Tpch.query) -> List.mem q.Tpch.name names) Tpch.all
  in
  let rows =
    List.concat_map
      (fun kind ->
        List.map
          (fun (q : Tpch.query) ->
            {
              q_name = q.Tpch.name;
              q_proto = Ctx.kind_label kind;
              q_modes = List.map (run_one kind plain q) modes;
            })
          queries)
      kinds
  in
  hdr "%-6s %-7s %-7s %9s %12s %8s %10s  %s" "query" "proto" "mode" "rounds"
    "bits" "msgs" "est-net" "joins";
  List.iter
    (fun r ->
      List.iter
        (fun m ->
          hdr "%-6s %-7s %-7s %9d %12d %8d %10s  %s" r.q_name r.q_proto
            m.m_mode m.m_tally.Comm.t_rounds m.m_tally.Comm.t_bits
            m.m_tally.Comm.t_messages
            (pretty_time (secs m))
            (String.concat "," m.m_joins))
        r.q_modes)
    rows;
  (* gate 1: every run validates *)
  let bad_valid =
    List.concat_map
      (fun r ->
        List.filter_map
          (fun m ->
            if m.m_ok then None
            else Some (Printf.sprintf "%s/%s/%s" r.q_name r.q_proto m.m_mode))
          r.q_modes)
      rows
  in
  (* gate 2: linear beats sort on >=3 targets, per protocol *)
  let need_beats = min 3 (List.length names) in
  let beats_short =
    List.filter_map
      (fun kind ->
        let lbl = Ctx.kind_label kind in
        let mine = List.filter (fun r -> r.q_proto = lbl) rows in
        let won = List.filter linear_beats_sort mine in
        hdr "%s: linear beats sort (rounds and/or bits) on %d/%d queries" lbl
          (List.length won) (List.length mine);
        if List.length won >= need_beats then None else Some lbl)
      kinds
  in
  (* gate 3: auto is measured-cheapest everywhere *)
  let auto_lost =
    List.filter_map
      (fun r ->
        if auto_cheapest r then None
        else Some (Printf.sprintf "%s/%s" r.q_name r.q_proto))
      rows
  in
  if bad_valid <> [] then
    hdr "VALIDATION FAILURES: %s" (String.concat ", " bad_valid);
  if beats_short <> [] then
    hdr "LINEAR-VS-SORT GATE FAILED under: %s"
      (String.concat ", " beats_short);
  if auto_lost <> [] then
    hdr "AUTO NOT CHEAPEST on: %s" (String.concat ", " auto_lost);
  let oc = open_out "BENCH_join.json" in
  Printf.fprintf oc
    "{\n  \"sf\": %g,\n  \"quick\": %b,\n  \"mode_env\": \"ORQ_JOIN\",\n\
    \  \"profile\": \"%s\",\n  \"queries\": [\n%s\n  ],\n\
    \  \"all_validated\": %b,\n  \"linear_beats_sort_gate\": %b,\n\
    \  \"auto_cheapest_gate\": %b\n}\n"
    sf quick
    (Joincost.profile ()).Netsim.label
    (String.concat ",\n" (List.map json_of_qrow rows))
    (bad_valid = []) (beats_short = []) (auto_lost = []);
  close_out oc;
  hdr "wrote BENCH_join.json";
  if bad_valid <> [] || beats_short <> [] || auto_lost <> [] then exit 1
