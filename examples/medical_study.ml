(* A collaborative medical study — the scenario that motivates the
   outsourced MPC setting in the paper's introduction: several hospitals
   contribute patient records (so join keys are duplicated across owners
   and no PK-FK constraints can be assumed), and a research consortium
   learns only aggregate statistics.

   Three analyses over the shared data:
     1. Comorbidity  — most common diagnoses within a study cohort;
     2. Aspirin      — patients who took aspirin after a heart-disease
                       diagnosis (a many-to-many join, pre-aggregated);
     3. C.Diff       — patients with a recurring infection 15-56 days
                       after a previous one (adjacent-pair pattern).

   Run with:  dune exec examples/medical_study.exe *)

open Orq_proto
open Orq_workloads

(* opening shuffles row order; the analyst sorts the plaintext locally *)
let reveal_rows ?(sort_desc_by = -1) table cols =
  let opened = Orq_core.Table.reveal table in
  let k = Array.length (List.assoc (List.hd cols) opened) in
  let rows =
    List.init k (fun i -> List.map (fun c -> (List.assoc c opened).(i)) cols)
  in
  if sort_desc_by < 0 then rows
  else
    List.sort
      (fun a b -> compare (List.nth b sort_desc_by) (List.nth a sort_desc_by))
      rows

let () =
  (* four-party maliciously secure deployment: even a hospital that
     actively deviates cannot corrupt the study without detection *)
  let ctx = Ctx.create Ctx.Mal_hm in
  Printf.printf "protocol: %s (%d computing parties)\n%!"
    (Ctx.kind_label ctx.Ctx.kind) ctx.Ctx.parties;

  let plain = Other_gen.generate 800 in
  let db = Other_gen.share ctx plain in
  Printf.printf "shared: %d diagnosis rows, %d medication rows, cohort of %d\n%!"
    (Orq_core.Table.nrows db.Other_gen.m_diagnosis)
    (Orq_core.Table.nrows db.Other_gen.m_medication)
    (Orq_core.Table.nrows db.Other_gen.m_cohort);

  (* 1. Comorbidity *)
  let top = (Other_queries.find "Comorbidity").Other_queries.run db in
  Printf.printf "\ntop diagnoses in cohort (diag, count):\n";
  List.iter
    (fun row ->
      match row with
      | [ d; c ] -> Printf.printf "  diagnosis %2d: %d patients\n" d c
      | _ -> ())
    (reveal_rows ~sort_desc_by:1 top [ "diag"; "cnt" ]);

  (* 2. Aspirin *)
  let asp = (Other_queries.find "Aspirin").Other_queries.run db in
  (match reveal_rows asp [ "patients" ] with
  | [ [ n ] ] ->
      Printf.printf "\npatients on aspirin after heart-disease diagnosis: %d\n" n
  | _ -> ());

  (* 3. C.Diff recurrence *)
  let cd = (Other_queries.find "C.Diff").Other_queries.run db in
  (match reveal_rows cd [ "patients" ] with
  | [ [ n ] ] -> Printf.printf "patients with recurring C.Diff: %d\n" n
  | _ -> ());

  (* malicious security in action: a tampering party is caught *)
  Printf.printf "\ninjecting a corrupted multiplication by party 2... %!";
  (try
     Ctx.with_tamper ctx
       (fun ~party ~op -> if party = 2 && op = "mul" then Some 1 else None)
       (fun () ->
         ignore ((Other_queries.find "Comorbidity").Other_queries.run db))
   with Ctx.Abort msg -> Printf.printf "aborted as expected: %s\n" msg);

  let tally = Orq_net.Comm.snapshot ctx.Ctx.comm in
  Printf.printf
    "\ntotal: %d rounds, %.1f MiB — estimated %.1fs over WAN\n"
    tally.Orq_net.Comm.t_rounds
    (float_of_int tally.Orq_net.Comm.t_bits /. 8. /. 1024. /. 1024.)
    (Orq_net.Netsim.network_time Orq_net.Netsim.wan tally)
