(* Protocol tour: the same query under all three MPC protocols — the
   black-box protocol-agnostic design of §2.4 in action. The query code is
   written once; switching threat models is one constructor.

     SH-DM  — ABY-style 2PC, semi-honest, tolerates a dishonest majority;
     SH-HM  — replicated 3PC (Araki et al.), semi-honest, honest majority;
     Mal-HM — Fantastic-Four-style 4PC, malicious security with abort.

   Run with:  dune exec examples/protocol_tour.exe *)

open Orq_proto
open Orq_core
open Orq_workloads
module Netsim = Orq_net.Netsim

(* the query: market share per company over jointly held transactions *)
let market_share db = (Other_queries.find "MarketShare").Other_queries.run db

let () =
  let plain = Other_gen.generate 600 in
  Printf.printf "%-8s %-8s %10s %10s %12s %12s %12s\n" "proto" "parties"
    "rounds" "MiB" "est-LAN" "est-WAN" "est-GEO";
  let results =
    List.map
      (fun kind ->
        let ctx = Ctx.create kind in
        let db = Other_gen.share ctx plain in
        let t0 = Unix.gettimeofday () in
        let res = market_share db in
        let compute = Unix.gettimeofday () -. t0 in
        let tally = Orq_net.Comm.snapshot ctx.Ctx.comm in
        let est p = compute +. Netsim.network_time p tally in
        Printf.printf "%-8s %-8d %10d %10.1f %11.1fs %11.1fs %11.1fs\n%!"
          (Ctx.kind_label kind) ctx.Ctx.parties tally.Orq_net.Comm.t_rounds
          (float_of_int tally.Orq_net.Comm.t_bits /. 8. /. 1024. /. 1024.)
          (est Netsim.lan) (est Netsim.wan) (est Netsim.geo);
        (kind, Table.valid_rows_sorted res [ "company"; "share_pct" ]))
      Ctx.all_kinds
  in
  (* every protocol computes the same relation *)
  (match results with
  | (_, r1) :: rest ->
      assert (List.for_all (fun (_, r) -> r = r1) rest);
      Printf.printf
        "\nall three protocols agree on the result (%d companies):\n"
        (List.length r1);
      List.iter
        (fun row ->
          match row with
          | [ c; s ] -> Printf.printf "  company %2d: %2d%% market share\n" c s
          | _ -> ())
        r1
  | [] -> ());
  (* and only the malicious protocol detects tampering *)
  Printf.printf "\ntamper detection: ";
  List.iter
    (fun kind ->
      let ctx = Ctx.create kind in
      let db = Other_gen.share ctx plain in
      let outcome =
        try
          Ctx.with_tamper ctx
            (fun ~party ~op ->
              if party = 0 && op = "mul" then Some 42 else None)
            (fun () -> ignore (market_share db));
          "ran (semi-honest: undetected)"
        with Ctx.Abort _ -> "ABORTED (detected)"
      in
      Printf.printf "%s=%s  " (Ctx.kind_label kind) outcome)
    Ctx.all_kinds;
  print_newline ()
