(* The automatic query planner — the extension the paper names as future
   work (§7: "future work includes integrating ORQ with an automatic query
   planner"). Analysts describe *what* to compute as a logical plan; the
   optimizer decides *how*:

     - filters are pushed below joins;
     - joins are oriented so a unique-key side feeds the one-to-many
       join-aggregation operator;
     - a decomposable aggregation above a many-to-many join is rewritten
       into the §3.6 pre-aggregation pipeline automatically;
     - anything still outside the tractable class takes the §2.1
       quadratic oblivious fallback.

   Run with:  dune exec examples/planner_demo.exe *)

open Orq_proto
open Orq_core
open Orq_planner

let () =
  let ctx = Ctx.create Ctx.Sh_hm in
  (* two hospitals' visit logs: patient ids are duplicated in BOTH tables,
     so no PK-FK constraint exists for the join *)
  let prg = Orq_util.Prg.create 12 in
  let n = 300 in
  let visits_a =
    Table.create ctx "hospital_a"
      [
        ("pid", 12, Array.init n (fun _ -> 1 + Orq_util.Prg.int_below prg 60));
        ("cost_a", 12, Array.init n (fun _ -> Orq_util.Prg.int_below prg 500));
      ]
  in
  let visits_b =
    Table.create ctx "hospital_b"
      [
        ("pid", 12, Array.init n (fun _ -> 1 + Orq_util.Prg.int_below prg 60));
        ("cost_b", 12, Array.init n (fun _ -> Orq_util.Prg.int_below prg 500));
      ]
  in

  (* "total hospital-B cost, weighted over every cross-hospital visit
     pair, per patient" — a many-to-many join + SUM *)
  let plan =
    Plan.aggregate ~keys:[ "pid" ]
      ~aggs:[ { Dataflow.src = "cost_b"; dst = "total_b"; fn = Dataflow.Sum } ]
      (Plan.join (Plan.scan visits_a) (Plan.scan visits_b) ~on:[ "pid" ])
  in
  print_endline "logical plan:";
  print_endline ("  " ^ Plan.explain plan);
  let optimized = Optimize.run plan in
  print_endline "\nafter optimization (automatic §3.6 pre-aggregation):";
  print_endline ("  " ^ Plan.explain optimized);

  let t0 = Unix.gettimeofday () in
  let result, fallbacks = Compile.run plan in
  Printf.printf
    "\ncompiled and executed under %s in %.2fs — quadratic fallbacks: %d\n"
    (Ctx.kind_label ctx.Ctx.kind)
    (Unix.gettimeofday () -. t0)
    fallbacks;
  let rows = Table.valid_rows_sorted result [ "pid"; "total_b" ] in
  Printf.printf "result: %d patient groups (first 5):\n" (List.length rows);
  List.iteri
    (fun i row ->
      if i < 5 then
        match row with
        | [ p; t ] -> Printf.printf "  patient %2d: weighted cost %d\n" p t
        | _ -> ())
    rows;

  (* the same query WITHOUT the rewrite would have been quadratic: ask the
     compiler to skip optimization and watch the fallback counter *)
  let small_a = Table.take_rows visits_a 40 and small_b = Table.take_rows visits_b 40 in
  let raw_join = Plan.join (Plan.scan small_a) (Plan.scan small_b) ~on:[ "pid" ] in
  let _, fb = Compile.run ~optimize:false raw_join in
  Printf.printf
    "\nunoptimized raw many-to-many join (40x40 rows): %d quadratic fallback(s)\n"
    fb;
  Printf.printf
    "— exactly the §2.1 story: inside the tractable class ORQ stays\n\
    \  O(n log n); outside it, it falls back like prior work.\n"
