(* Quickstart: TPC-H Q3 in the ORQ dataflow API — the paper's Listing 1.

   Three data owners (a retailer's customer list, an order-management
   system, and a logistics provider's line items) secret-share their
   tables; the computing parties evaluate the query without ever seeing a
   row; the analyst opens only the aggregated result.

   Run with:  dune exec examples/quickstart.exe *)

open Orq_proto
open Orq_core
open Orq_workloads

let () =
  (* 1. pick an MPC protocol: 3-party semi-honest honest-majority *)
  let ctx = Ctx.create Ctx.Sh_hm in

  (* 2. data owners secret-share their tables (here: generated TPC-H data
        at a micro scale factor; each column is (name, bit-width, values)) *)
  let db = Tpch_gen.share ctx (Tpch_gen.generate 0.0005) in
  let customers = db.Tpch_gen.m_customer in
  let orders = db.Tpch_gen.m_orders in
  let lineitem = db.Tpch_gen.m_lineitem in
  Printf.printf "shared inputs: %d customers, %d orders, %d line items\n%!"
    (Table.nrows customers) (Table.nrows orders) (Table.nrows lineitem);

  (* 3. the query — filters, two joins, a grouped aggregation, order-by
        and limit, exactly as in Listing 1 of the paper *)
  let segment = Tpch_params.q3_segment and date = Tpch_params.q3_date in
  let c = Dataflow.filter customers Expr.(col "c_mktsegment" ==. const segment) in
  let o = Dataflow.filter orders Expr.(col "o_orderdate" <. const date) in
  let li = Dataflow.filter lineitem Expr.(col "l_shipdate" >. const date) in
  let li =
    Dataflow.map li ~dst:"revenue"
      Expr.(Div_pub (col "l_extendedprice" *! (const 100 -! col "l_discount"), 100))
  in
  let co =
    Dataflow.inner_join
      (Tpch_util.select c [ ("c_custkey", "o_custkey") ])
      o ~on:[ "o_custkey" ]
  in
  let res =
    Dataflow.inner_join
      (Tpch_util.select co
         [
           ("o_orderkey", "l_orderkey");
           ("o_orderdate", "o_orderdate");
           ("o_shippriority", "o_shippriority");
         ])
      li
      ~on:[ "l_orderkey" ]
      ~copy:[ "o_orderdate"; "o_shippriority" ]
  in
  let res =
    Dataflow.aggregate res
      ~keys:[ "l_orderkey"; "o_orderdate"; "o_shippriority" ]
      ~aggs:[ { Dataflow.src = "revenue"; dst = "total_revenue"; fn = Dataflow.Sum } ]
  in
  let res =
    Dataflow.limit
      (Dataflow.order_by res
         [ ("total_revenue", Dataflow.Desc); ("o_orderdate", Dataflow.Asc) ])
      10
  in

  (* 4. open the result to the analyst (invalid rows are masked and
        shuffled away before anything is revealed) *)
  let opened = Table.reveal res in
  let getcol n = List.assoc n opened in
  let k = Array.length (getcol "l_orderkey") in
  (* opening shuffles physical row order (masked invalid rows must not be
     identifiable), so the analyst re-sorts the plaintext locally *)
  let rows =
    List.sort
      (fun (_, _, _, r1) (_, _, _, r2) -> compare r2 r1)
      (List.init k (fun i ->
           ( (getcol "l_orderkey").(i),
             (getcol "o_orderdate").(i),
             (getcol "o_shippriority").(i),
             (getcol "total_revenue").(i) )))
  in
  Printf.printf "\nQ3 top-%d orders by revenue:\n" k;
  Printf.printf "%-10s %-10s %-9s %s\n" "orderkey" "orderdate" "priority"
    "revenue";
  List.iter
    (fun (ok, od, pr, rev) -> Printf.printf "%-10d %-10d %-9d %d\n" ok od pr rev)
    rows;

  (* 5. what did obliviousness cost? *)
  let tally = Orq_net.Comm.snapshot ctx.Ctx.comm in
  Printf.printf
    "\nMPC cost: %d communication rounds, %.1f MiB total traffic\n"
    tally.Orq_net.Comm.t_rounds
    (float_of_int tally.Orq_net.Comm.t_bits /. 8. /. 1024. /. 1024.);
  Printf.printf "estimated end-to-end: LAN %.1fs | WAN %.1fs\n"
    (Orq_net.Netsim.network_time Orq_net.Netsim.lan tally)
    (Orq_net.Netsim.network_time Orq_net.Netsim.wan tally)
