(* Single-owner secure outsourcing — the Flock scenario the paper's §2
   notes ORQ also supports: one data owner (here, a payroll department)
   wants cloud-scale analytics without any cloud provider ever seeing the
   data. The owner splits shares across servers run by *different*
   infrastructure providers; no single provider — nor any external attacker
   who compromises one of them — learns anything.

   The analysis: payroll fraud screening.
     1. employees paid above the 95th-percentile-ish threshold per dept
        (salary > 2 * dept average);
     2. duplicate bank accounts across employees (a classic fraud signal).

   Run with:  dune exec examples/flock_outsourcing.exe *)

open Orq_proto
open Orq_core
module D = Dataflow
module E = Expr

let () =
  (* the owner picks the 2-party dishonest-majority protocol: even if one
     of the two providers is fully compromised, nothing leaks *)
  let ctx = Ctx.create Ctx.Sh_dm in
  Printf.printf "outsourcing to %d non-colluding cloud providers (%s)\n%!"
    ctx.Ctx.parties (Ctx.kind_label ctx.Ctx.kind);

  (* the owner's payroll table, secret-shared (plus padding so even the
     true headcount stays hidden from the providers) *)
  let prg = Orq_util.Prg.create 99 in
  let n = 500 in
  let dept = Array.init n (fun _ -> 1 + Orq_util.Prg.int_below prg 6) in
  let salary =
    Array.init n (fun i -> 40_000 + Orq_util.Prg.int_below prg 60_000 + (if i mod 97 = 0 then 150_000 else 0))
  in
  let account = Array.init n (fun i -> if i mod 83 = 0 then 1111 else 10_000 + i) in
  let payroll =
    Table.pad_rows
      (Table.create ctx "payroll"
         [
           ("emp", 16, Array.init n (fun i -> i + 1));
           ("dept", 4, dept);
           ("salary", 20, salary);
           ("account", 16, account);
         ])
      12 (* hide the exact headcount *)
  in
  Printf.printf "shared payroll: %d physical rows (true count hidden)\n%!"
    (Table.nrows payroll);

  (* 1. outliers vs department average *)
  let avgs =
    D.aggregate payroll ~keys:[ "dept" ]
      ~aggs:[ { D.src = "salary"; dst = "avg_sal"; fn = D.Avg } ]
  in
  let joined =
    D.inner_join
      (Orq_workloads.Tpch_util.select avgs [ ("dept", "dept"); ("avg_sal", "avg_sal") ])
      (Table.rename_col payroll ~from:"dept" ~into:"dept")
      ~on:[ "dept" ] ~copy:[ "avg_sal" ]
  in
  let outliers =
    D.filter joined E.(col "salary" >. (col "avg_sal" *! const 2))
  in
  let flagged = Table.reveal (Table.project outliers [ "emp"; "salary" ]) in
  Printf.printf "\nemployees paid > 2x their department average: %d\n"
    (Array.length (List.assoc "emp" flagged));

  (* 2. duplicate bank accounts *)
  let dups =
    D.filter
      (D.aggregate payroll ~keys:[ "account" ]
         ~aggs:[ { D.src = "emp"; dst = "n"; fn = D.Count } ])
      E.(col "n" >=. const 2)
  in
  let dup_accounts = Table.reveal (Table.project dups [ "account"; "n" ]) in
  let accs = List.assoc "account" dup_accounts in
  Printf.printf "bank accounts shared by several employees: %d\n"
    (Array.length accs);
  Array.iteri
    (fun i a ->
      Printf.printf "  account %d used by %d employees\n" a
        (List.assoc "n" dup_accounts).(i))
    accs;

  let tally = Orq_net.Comm.snapshot ctx.Ctx.comm in
  let pre = Orq_net.Comm.snapshot ctx.Ctx.preproc in
  Printf.printf
    "\nonline: %d rounds, %.1f MiB | preprocessing (dealer): %.1f MiB\n"
    tally.Orq_net.Comm.t_rounds
    (float_of_int tally.Orq_net.Comm.t_bits /. 8. /. 1024. /. 1024.)
    (float_of_int pre.Orq_net.Comm.t_bits /. 8. /. 1024. /. 1024.);
  Printf.printf "estimated WAN end-to-end: %.1fs\n"
    (Orq_net.Netsim.network_time Orq_net.Netsim.wan tally)
