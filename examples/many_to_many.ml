(* Many-to-many joins without the quadratic blow-up — the paper's Figure 3
   and Listing 2: a generalization of TPC-H Q3 where *no* PK-FK constraints
   are public (several owners contributed customer rows, so every join key
   may be duplicated on both sides).

   ORQ's trick (§3.6): a decomposable aggregation splits around the join —
   pre-aggregate multiplicities / partial sums on one input, run the
   one-to-many join-aggregation operator, post-aggregate. Intermediate
   sizes stay linear; the naive oblivious evaluation would materialize
   |C| x |O| x |LI| rows.

   Run with:  dune exec examples/many_to_many.exe *)

open Orq_proto
open Orq_core
open Orq_workloads
module D = Dataflow
module E = Expr

let () =
  let ctx = Ctx.create Ctx.Sh_hm in
  (* duplicate keys on purpose: two "hospitals" both contribute customers *)
  let plain = Tpch_gen.generate 0.0003 in
  let db = Tpch_gen.share ctx plain in
  let c = db.Tpch_gen.m_customer in
  let c = D.concat_tables c c (* duplicated customer keys! *) in
  let o = db.Tpch_gen.m_orders in
  let li = db.Tpch_gen.m_lineitem in
  Printf.printf
    "inputs: %d customers (with duplicate keys), %d orders, %d line items\n%!"
    (Table.nrows c) (Table.nrows o) (Table.nrows li);

  (* Listing 2, line by line:
     pre-aggregate customer multiplicity per CustKey, making keys unique *)
  let cm =
    D.aggregate
      (Table.project c [ "c_custkey" ])
      ~keys:[ "c_custkey" ]
      ~aggs:[ { D.src = "c_custkey"; dst = "m"; fn = D.Count } ]
  in
  (* first join: (unique) customers x orders, propagating multiplicity *)
  let co =
    D.inner_join
      (Tpch_util.select cm [ ("c_custkey", "o_custkey"); ("m", "m") ])
      o ~on:[ "o_custkey" ] ~copy:[ "m" ]
  in
  (* pre-aggregate line-item revenue per order key *)
  let li =
    D.map li ~dst:"revenue"
      E.(Div_pub (col "l_extendedprice" *! (const 100 -! col "l_discount"), 100))
  in
  let lir =
    D.aggregate li ~keys:[ "l_orderkey" ]
      ~aggs:[ { D.src = "revenue"; dst = "rev_pre"; fn = D.Sum } ]
  in
  (* second join + post-aggregation: TotalR = sum(rev_pre * m) *)
  let col =
    D.inner_join
      (Tpch_util.select lir [ ("l_orderkey", "o_orderkey"); ("rev_pre", "rev_pre") ])
      co ~on:[ "o_orderkey" ] ~copy:[ "rev_pre" ]
  in
  let col = D.map col ~dst:"total_r" E.(col "rev_pre" *! col "m") in
  let res =
    D.aggregate col
      ~keys:[ "o_orderkey"; "o_orderdate"; "o_shippriority" ]
      ~aggs:[ { D.src = "total_r"; dst = "total_revenue"; fn = D.Sum } ]
  in
  let res = D.limit (D.order_by res [ ("total_revenue", D.Desc) ]) 5 in

  let opened = Table.reveal res in
  let get n = List.assoc n opened in
  Printf.printf "\ntop orders by revenue (each counted twice — duplicated \
                 customers):\n";
  Array.iteri
    (fun i k ->
      Printf.printf "  order %4d: revenue %d\n" k (get "total_revenue").(i))
    (get "o_orderkey");

  (* check against the plaintext engine: the duplicated customers must
     exactly double each order's revenue *)
  let module P = Orq_plaintext.Ptable in
  let li_p =
    P.map plain.Tpch_gen.lineitem ~dst:"revenue" (fun g r ->
        g "l_extendedprice" r * (100 - g "l_discount" r) / 100)
  in
  let per_order =
    P.group_by li_p ~keys:[ "l_orderkey" ]
      ~aggs:[ { P.src = "revenue"; dst = "rev"; fn = P.Sum } ]
  in
  let best =
    P.limit (P.sort per_order [ ("rev", -1) ]) 5
  in
  Printf.printf "\nplaintext check (single-counted):\n";
  List.iter
    (fun row ->
      match row with
      | [ k; r ] -> Printf.printf "  order %4d: revenue %d (x2 = %d)\n" k r (2 * r)
      | _ -> ())
    best.P.rows;
  Printf.printf
    "\nintermediate sizes stayed linear: the largest table ORQ touched has \
     %d rows,\nwhile a naive oblivious 3-way join would hold %d rows.\n"
    (2 * Table.nrows li)
    (Table.nrows c * Table.nrows o)
